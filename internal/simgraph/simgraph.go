// Package simgraph builds and maintains the paper's similarity graph
// (Definition 4.1): for every user u, explore the 2-hop follow
// neighbourhood N2(u) and add a directed edge u→w for every w ∈ N2(u)
// whose profile similarity sim(u,w) reaches the threshold τ. Out-edges of
// u are its influential users Fu.
//
// Construction parallelizes over source users with a worker pool; each
// worker owns its BFS scratch and emits an edge slice, merged at the end.
// The homophily analysis of §3 justifies the 2-hop cut: it captures
// 70–80 % of each user's most similar peers at a tiny fraction of the
// all-pairs cost.
//
// The package also implements the §6.3 incremental maintenance strategies
// (keep old, update weights, crossfold re-exploration, rebuild from
// scratch) and the Table 4 / Figure 5 characteristics measurements.
package simgraph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/community"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/similarity"
	"repro/internal/wgraph"
)

// Config tunes SimGraph construction.
type Config struct {
	// Tau is the similarity threshold τ; edges below it are discarded.
	Tau float64
	// Hops is the exploration radius (the paper uses 2).
	Hops int
	// MinProfile skips source users with fewer retweets than this; users
	// without retweets can never have a positive similarity (they are the
	// cold-start cohort the paper leaves to future work).
	MinProfile int
	// MaxNeighborhood caps |N2(u)| per user to bound worst-case hubs; 0
	// means unlimited.
	MaxNeighborhood int
	// MaxOutDegree keeps only each user's top-M influencers by similarity
	// (0 = unlimited). A fixed tau alone cannot fit every activity level:
	// too high and sparse users lose all their edges (no coverage), too
	// low and active users drown their few strong influencers in hundreds
	// of weak ones (Definition 4.2 averages over Fu, so weak-edge floods
	// dilute the signal). The cap acts as a per-user adaptive tau,
	// matching the tight graph the paper reports (mean out-degree 5.9).
	MaxOutDegree int
	// Workers is the construction parallelism; 0 means GOMAXPROCS.
	Workers int
	// Pairwise forces the reference per-pair Sim path instead of the
	// inverted-index SimBatch kernel. The two produce bit-identical
	// graphs; the knob exists for verification and benchmark baselines.
	Pairwise bool
	// ClusterPrune enables the community pre-filter: candidates are
	// dropped by cluster overlap against Clusters before the kernel
	// scores them. At PruneMinOverlap == 0 only zero-overlap candidates
	// PROVABLY below Tau are dropped (similarity.SimUpperBound — exact,
	// the build stays bit-identical; the certificate is suspended while
	// topic blending is on, since the bound covers only Definition 3.1).
	// A positive PruneMinOverlap switches to community-restricted
	// exploration: the 2-hop BFS itself refuses to keep OR expand
	// frontier nodes whose overlap with the source is below the
	// threshold, so low-overlap regions of N2(u) cost nothing — not the
	// BFS, not the filter, not the kernel. Lossy (a high-overlap
	// candidate reachable only through a low-overlap intermediate is
	// skipped too), traded for build speed and measured by internal/eval;
	// the pruned graph is always an edge-subset of the unpruned one. The
	// lossy kernel also scatters over a label-bucketed posting index
	// (similarity.SimBatchClustered) so posting-list segments owned by
	// non-candidate communities are skipped as well. No-op while Clusters
	// is nil (e.g. the first build, before any graph exists to detect
	// communities on).
	ClusterPrune bool
	// PruneMinOverlap is the lossy prune threshold, see ClusterPrune.
	PruneMinOverlap float64
	// Clusters is the sparse community embedding the pre-filter consults;
	// typically detected on the previous graph generation.
	Clusters *community.Embeddings
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{
		Tau:             0.003,
		Hops:            2,
		MinProfile:      1,
		MaxNeighborhood: 4000,
		MaxOutDegree:    25,
		Workers:         0,
	}
}

func (c Config) withDefaults() Config {
	if c.Hops <= 0 {
		c.Hops = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MinProfile < 1 {
		c.MinProfile = 1
	}
	return c
}

// Build constructs the similarity graph over the follow graph, using the
// profiles and popularities in store.
func Build(follow *graph.Graph, store *similarity.Store, cfg Config) *wgraph.Graph {
	cfg = cfg.withDefaults()
	n := follow.NumNodes()
	idx := clusterIndexFor(store, cfg)

	type task struct{ lo, hi int }
	tasks := make(chan task, cfg.Workers*4)
	results := make(chan []wgraph.Edge, cfg.Workers)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []wgraph.Edge
			var sc buildScratch // BFS buffers, batch accumulators, top-M heap
			for t := range tasks {
				for u := t.lo; u < t.hi; u++ {
					local = appendEdgesFor(local, follow, store, ids.UserID(u), cfg, idx, &sc)
				}
			}
			results <- local
		}()
	}

	const block = 256
	go func() {
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			tasks <- task{lo, hi}
		}
		close(tasks)
	}()

	go func() {
		wg.Wait()
		close(results)
	}()

	var edges []wgraph.Edge
	for local := range results {
		edges = append(edges, local...)
	}
	return wgraph.NewFromEdges(n, edges)
}

// buildScratch is the per-worker reusable state for appendEdgesFor: BFS
// frontier buffers, the batch-kernel accumulators, the candidate and
// similarity slices, and the bounded top-M heap. Everything grows on
// demand and is retained across source users, so steady-state
// construction allocates only the emitted edges.
type buildScratch struct {
	bfs   graph.BoundedBFS
	batch similarity.BatchScratch
	cands []ids.UserID
	sims  []float64
	top   []wgraph.Edge
	// Clustered-kernel scratch: the candidates' distinct labels
	// (ascending, shifted-by-one membership marks for dedup).
	labels    []int32
	labelSeen []bool
	// Per-source dense overlap vector for the lossy prune's verdict calls.
	overlap community.OverlapScratch
}

// clusterIndexFor builds the label-bucketed posting index the clustered
// SimBatch kernel scatters over, when the config calls for it. One
// linear pass over the inverted index, shared read-only by all workers.
func clusterIndexFor(store *similarity.Store, cfg Config) *similarity.ClusterIndex {
	if !cfg.ClusterPrune || cfg.Clusters == nil || cfg.Pairwise {
		return nil
	}
	return store.BuildClusterIndex(cfg.Clusters.BucketLabels(), cfg.Clusters.NumClusters())
}

// appendEdgesFor explores from u and appends the surviving edges.
func appendEdgesFor(edges []wgraph.Edge, follow *graph.Graph, store *similarity.Store, u ids.UserID, cfg Config, idx *similarity.ClusterIndex, sc *buildScratch) []wgraph.Edge {
	if store.ProfileSize(u) < cfg.MinProfile {
		return edges
	}

	// Lossy cluster pruning restricts the exploration itself: a frontier
	// node whose cluster overlap with u is below the threshold is never
	// expanded, so whole low-overlap regions of N2(u) are skipped before
	// the kernel, the filter, or even the BFS pays for them (under
	// homophily — Nguyen & Zheng, PAPERS.md — low-overlap followees lead
	// to low-overlap candidates). Two carve-outs keep the loss bounded:
	// direct (hop-1) neighbors are always retained as candidates — an
	// explicit follow is stronger signal than a detected label, and
	// scoring one candidate is ~12 ops — and nodes detection said nothing
	// about (no membership at all) are never pruned: their overlap is
	// zero for lack of evidence, not for dissimilarity. Exact mode
	// (PruneMinOverlap == 0) keeps the full exploration: the certificate
	// below must see every candidate to stay bit-identical.
	lossy := cfg.ClusterPrune && cfg.Clusters != nil && cfg.PruneMinOverlap > 0
	if lossy && cfg.Clusters.BucketLabel(u) == community.NoCluster {
		lossy = false // unlabelled source: no evidence to prune on
	}
	var nodes []ids.UserID
	var dist []int8
	if lossy {
		in, kept := 0, 0
		cfg.Clusters.BeginSource(&sc.overlap, u)
		nodes, dist = sc.bfs.ExploreFiltered(follow, u, cfg.Hops, func(v ids.UserID, hop int8) graph.Verdict {
			in++
			if cfg.Clusters.BucketLabel(v) == community.NoCluster ||
				cfg.Clusters.OverlapSource(&sc.overlap, v) >= cfg.PruneMinOverlap {
				kept++
				return graph.KeepExpand
			}
			if hop == 1 {
				kept++
				return graph.Keep
			}
			return graph.Drop
		})
		store.NotePrune(in, kept)
	} else {
		nodes, dist = sc.bfs.Explore(follow, u, cfg.Hops)
	}
	nodes = capNeighborhood(nodes, dist, cfg.MaxNeighborhood)

	// Users with empty profiles can never clear tau; dropping them here
	// keeps them out of the similarity kernel's membership array.
	cands := sc.cands[:0]
	for _, w := range nodes {
		if store.ProfileSize(w) > 0 {
			cands = append(cands, w)
		}
	}

	// Exact-mode pre-filter (PruneMinOverlap == 0): drop a candidate only
	// when it shares no cluster with u AND the O(1) mass certificate
	// proves its similarity cannot reach Tau anyway (only sim ≥ Tau
	// candidates ever become edges), so the built graph stays
	// bit-identical. Filtering compacts sc.cands in place.
	if cfg.ClusterPrune && cfg.Clusters != nil && !lossy {
		in := len(cands)
		exact := !store.TopicsEnabled() // the bound covers Definition 3.1 only
		kept := cands[:0]
		for _, w := range cands {
			if cfg.Clusters.Overlap(u, w) == 0 && exact && store.SimUpperBound(u, w) < cfg.Tau {
				continue
			}
			kept = append(kept, w)
		}
		cands = kept
		store.NotePrune(in, len(kept))
	}
	sc.cands = cands
	return appendEdgesKernel(edges, store, u, cfg, idx, sc)
}

func appendEdgesKernel(edges []wgraph.Edge, store *similarity.Store, u ids.UserID, cfg Config, idx *similarity.ClusterIndex, sc *buildScratch) []wgraph.Edge {
	cands := sc.cands

	switch {
	case cfg.Pairwise:
		if cap(sc.sims) < len(cands) {
			sc.sims = make([]float64, len(cands))
		}
		sc.sims = sc.sims[:len(cands)]
		for i, w := range cands {
			sc.sims[i] = store.Sim(u, w)
		}
	case idx != nil:
		// Clustered kernel: collect the candidates' distinct labels
		// (ascending; -1 for unlabelled, stored shifted by one in the
		// dedup marks) and scatter over those posting groups only.
		nl := cfg.Clusters.NumClusters()
		if len(sc.labelSeen) < nl+1 {
			sc.labelSeen = make([]bool, nl+1)
		}
		for _, w := range cands {
			sc.labelSeen[cfg.Clusters.BucketLabel(w)+1] = true
		}
		sc.labels = sc.labels[:0]
		for l := 0; l <= nl; l++ {
			if sc.labelSeen[l] {
				sc.labels = append(sc.labels, int32(l-1))
				sc.labelSeen[l] = false
			}
		}
		sc.sims = store.SimBatchClustered(u, cands, sc.labels, idx, &sc.batch, sc.sims)
	default:
		sc.sims = store.SimBatch(u, cands, &sc.batch, sc.sims)
	}

	if cfg.MaxOutDegree <= 0 {
		for i, w := range cands {
			if sim := sc.sims[i]; sim >= cfg.Tau {
				edges = append(edges, wgraph.Edge{From: u, To: w, Weight: float32(sim)})
			}
		}
		return edges
	}

	// Keep the top MaxOutDegree edges with a bounded min-heap instead of
	// sorting every surviving edge: O(|C| log M) and no O(|C|)-sized sort
	// buffer. Ordering is (weight desc, To asc), matching the previous
	// full-sort-and-truncate edge set exactly.
	sc.top = sc.top[:0]
	for i, w := range cands {
		sim := sc.sims[i]
		if sim < cfg.Tau {
			continue
		}
		e := wgraph.Edge{From: u, To: w, Weight: float32(sim)}
		if len(sc.top) < cfg.MaxOutDegree {
			sc.top = append(sc.top, e)
			siftUp(sc.top, len(sc.top)-1)
		} else if edgeLess(sc.top[0], e) {
			sc.top[0] = e
			siftDown(sc.top, 0)
		}
	}
	return append(edges, sc.top...)
}

// capNeighborhood truncates an exploration result to at most max nodes
// without ever dropping hop-1 neighbours. BFS order is non-decreasing in
// distance, so the direct followees form a prefix and the cap removes
// only the hop-2+ tail; raw truncation could arbitrarily drop whole
// hop-2 regions and, for users following more than max accounts, even
// direct followees.
func capNeighborhood(nodes []ids.UserID, dist []int8, max int) []ids.UserID {
	if max <= 0 || len(nodes) <= max {
		return nodes
	}
	h1 := sort.Search(len(dist), func(i int) bool { return dist[i] > 1 })
	if h1 > max {
		max = h1
	}
	return nodes[:max]
}

// edgeLess orders edges worst-first for the bounded heap: an edge is
// "less" when it loses to the other under (weight desc, To asc), so the
// heap root is the weakest kept edge.
func edgeLess(a, b wgraph.Edge) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return a.To > b.To
}

func siftUp(h []wgraph.Edge, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !edgeLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []wgraph.Edge, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && edgeLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && edgeLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Characteristics summarizes a similarity graph as in Table 4.
type Characteristics struct {
	Nodes         int     // users with at least one incident edge
	Edges         int     // directed edges
	MeanSim       float64 // mean edge weight
	MeanOutDegree float64 // edges / active nodes
	Diameter      int     // estimated (double-sweep lower bound)
	MeanPath      float64 // sampled average shortest path
}

// Measure computes Table 4 characteristics. sampleSources are the BFS
// sources used for path sampling and diameter estimation.
func Measure(g *wgraph.Graph, sampleSources []ids.UserID) Characteristics {
	un := ToUnweighted(g)
	ch := Characteristics{
		Nodes:   g.ActiveNodes(),
		Edges:   g.NumEdges(),
		MeanSim: g.MeanWeight(),
	}
	if ch.Nodes > 0 {
		ch.MeanOutDegree = float64(ch.Edges) / float64(ch.Nodes)
	}
	if len(sampleSources) > 0 {
		ch.MeanPath = un.AveragePathLength(sampleSources)
		limit := len(sampleSources)
		if limit > 8 {
			limit = 8
		}
		ch.Diameter = un.EstimateDiameter(sampleSources[:limit])
	}
	return ch
}

// String renders the characteristics like the paper's Table 4.
func (c Characteristics) String() string {
	return fmt.Sprintf("SimGraph{nodes=%d edges=%d meanSim=%.4f meanOutDeg=%.1f diameter=%d meanPath=%.1f}",
		c.Nodes, c.Edges, c.MeanSim, c.MeanOutDegree, c.Diameter, c.MeanPath)
}

// ToUnweighted projects a weighted similarity graph onto the unweighted
// CSR graph type so the traversal/measurement primitives apply.
func ToUnweighted(g *wgraph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges())
	b.SetNumNodes(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		to, _ := g.Out(ids.UserID(u))
		for _, v := range to {
			b.AddEdge(ids.UserID(u), v)
		}
	}
	return b.Build()
}
