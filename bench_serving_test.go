package repro

// Serving-layer benchmarks: concurrent read throughput of the Engine
// facade. BenchmarkRecommendSerial is the single-goroutine baseline;
// BenchmarkRecommendParallel runs the same workload under b.RunParallel,
// so comparing ns/op across the two shows how reads scale with
// GOMAXPROCS now that the pool is lock-split. BenchmarkObserveParallel
// measures writer throughput when many goroutines feed the stream (the
// exclusive lock serializes them — the number quantifies that cost).

import (
	"sync"
	"sync/atomic"
	"testing"
)

var servingState struct {
	once sync.Once
	eng  *Engine
	test []Action
	now  Timestamp
}

func servingSetup(b *testing.B) {
	b.Helper()
	defer b.ResetTimer()
	servingState.once.Do(func() {
		ds, err := GenerateDataset(DatasetOptions{Users: benchUsers, Seed: benchSeed})
		if err != nil {
			panic(err)
		}
		train, test, err := SplitDataset(ds, 0.9)
		if err != nil {
			panic(err)
		}
		opts := DefaultEngineOptions()
		opts.Train = train
		eng, err := NewEngine(ds, opts)
		if err != nil {
			panic(err)
		}
		// Warm the pools with half the test stream so Recommend has real
		// candidates to rank; the rest feeds the Observe benchmarks.
		half := len(test) / 2
		for _, a := range test[:half] {
			if err := eng.Observe(a.User, a.Tweet, a.Time); err != nil {
				panic(err)
			}
		}
		servingState.eng = eng
		servingState.test = test[half:]
		servingState.now = test[half].Time
	})
}

func BenchmarkRecommendSerial(b *testing.B) {
	servingSetup(b)
	eng, now := servingState.eng, servingState.now
	users := eng.Dataset().NumUsers()
	for i := 0; i < b.N; i++ {
		eng.Recommend(UserID(i%users), 10, now)
	}
}

func BenchmarkRecommendParallel(b *testing.B) {
	servingSetup(b)
	eng, now := servingState.eng, servingState.now
	users := eng.Dataset().NumUsers()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		u := int(next.Add(1000003)) % users
		for pb.Next() {
			eng.Recommend(UserID(u), 10, now)
			u = (u + 13) % users
		}
	})
}

// Readers racing a live writer: the realistic serving mix. The writer
// goroutine streams actions for the whole benchmark; RunParallel times
// only the reads.
func BenchmarkRecommendParallelWithWriter(b *testing.B) {
	servingSetup(b)
	eng, now, test := servingState.eng, servingState.now, servingState.test
	users := eng.Dataset().NumUsers()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a := test[i%len(test)]
			if err := eng.Observe(a.User, a.Tweet, a.Time); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := int(next.Add(1000003)) % users
		for pb.Next() {
			eng.Recommend(UserID(u), 10, now)
			u = (u + 13) % users
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkObserveSerial(b *testing.B) {
	servingSetup(b)
	eng, test := servingState.eng, servingState.test
	for i := 0; i < b.N; i++ {
		a := test[i%len(test)]
		if err := eng.Observe(a.User, a.Tweet, a.Time); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	servingSetup(b)
	eng, test := servingState.eng, servingState.test
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a := test[int(next.Add(1))%len(test)]
			if err := eng.Observe(a.User, a.Tweet, a.Time); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
