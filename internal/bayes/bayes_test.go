package bayes

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/recsys"
)

// chainCtx: follow chain 2→1→0 (2 follows 1, 1 follows 0), all with
// training profiles so trusts are non-zero. Tracked: users 1 and 2.
func chainCtx(trustP, priorK float64) (*recsys.Context, *Recommender) {
	b := graph.NewBuilder(3, 2)
	b.SetNumNodes(3)
	b.AddEdge(1, 0)
	b.AddEdge(2, 1)
	g := b.Build()
	train := []dataset.Action{
		{User: 0, Tweet: 0, Time: 1},
		{User: 1, Tweet: 0, Time: 2},
		{User: 2, Tweet: 0, Time: 3},
		{User: 0, Tweet: 1, Time: 4},
		{User: 1, Tweet: 1, Time: 5},
		{User: 2, Tweet: 1, Time: 6},
	}
	ds := &dataset.Dataset{Graph: g, Tweets: make([]dataset.Tweet, 10), Actions: train}
	ctx := recsys.NewContext(ds, train, []ids.UserID{1, 2}, 1)
	r := New(Config{Threshold: 1e-4, MaxDepth: 3, TrustP: trustP, PriorK: priorK})
	if err := r.Init(ctx); err != nil {
		panic(err)
	}
	return ctx, r
}

func TestTrustValues(t *testing.T) {
	_, r := chainCtx(0.4, 2)
	// Each user has 2 training retweets → prior = 2/(2+2) = 0.5, trust =
	// 0.4 × 0.5 = 0.2 on every followee edge.
	if tr := r.trustFor(1, 0); math.Abs(float64(tr)-0.2) > 1e-6 {
		t.Errorf("trust(1→0) = %v, want 0.2", tr)
	}
	if tr := r.trustFor(2, 1); math.Abs(float64(tr)-0.2) > 1e-6 {
		t.Errorf("trust(2→1) = %v, want 0.2", tr)
	}
	// No follow edge → no trust.
	if tr := r.trustFor(0, 2); tr != 0 {
		t.Errorf("trust(0→2) = %v, want 0", tr)
	}
}

func TestPosteriorPropagation(t *testing.T) {
	_, r := chainCtx(0.4, 2)
	// User 0 shares tweet 5 (author is tweets[5].Author = 0 by zero
	// value, so the author-seed coincides with the sharer).
	r.Observe(dataset.Action{User: 0, Tweet: 5, Time: 10})
	// Follower 1: p = trust × 1 = 0.2. Follower-of-follower 2:
	// p = trust × 0.2 = 0.04.
	recs1 := r.Recommend(1, 5, 11)
	if len(recs1) != 1 || math.Abs(recs1[0].Score-0.2) > 1e-6 {
		t.Fatalf("user 1 recs = %+v, want score 0.2", recs1)
	}
	recs2 := r.Recommend(2, 5, 11)
	if len(recs2) != 1 || math.Abs(recs2[0].Score-0.04) > 1e-6 {
		t.Fatalf("user 2 recs = %+v, want score 0.04", recs2)
	}
}

func TestNoisyORAccumulation(t *testing.T) {
	// User 2 follows both 0 and 1; both share → noisy-OR combines.
	b := graph.NewBuilder(3, 2)
	b.SetNumNodes(3)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	g := b.Build()
	train := []dataset.Action{
		{User: 0, Tweet: 0, Time: 1}, {User: 1, Tweet: 0, Time: 2}, {User: 2, Tweet: 0, Time: 3},
		{User: 0, Tweet: 1, Time: 4}, {User: 1, Tweet: 1, Time: 5}, {User: 2, Tweet: 1, Time: 6},
	}
	ds := &dataset.Dataset{Graph: g, Tweets: make([]dataset.Tweet, 10), Actions: train}
	ctx := recsys.NewContext(ds, train, []ids.UserID{2}, 1)
	r := New(Config{Threshold: 1e-4, MaxDepth: 2, TrustP: 0.4, PriorK: 2})
	if err := r.Init(ctx); err != nil {
		t.Fatal(err)
	}
	// tweets[5].Author = 0, so the first Observe seeds the author (0)
	// and then user 1's share adds independent evidence.
	r.Observe(dataset.Action{User: 1, Tweet: 5, Time: 10})
	recs := r.Recommend(2, 5, 11)
	// p = 1 − (1−0.2)(1−0.2) = 0.36.
	if len(recs) != 1 || math.Abs(recs[0].Score-0.36) > 1e-6 {
		t.Fatalf("recs = %+v, want 0.36", recs)
	}
}

func TestThresholdStopsPropagation(t *testing.T) {
	_, r := chainCtx(0.4, 2)
	r.cfg.Threshold = 0.1 // second hop delta 0.04 < 0.1 must be cut
	r.Observe(dataset.Action{User: 0, Tweet: 5, Time: 10})
	if recs := r.Recommend(2, 5, 11); len(recs) != 0 {
		t.Fatalf("threshold failed to stop second hop: %+v", recs)
	}
	if recs := r.Recommend(1, 5, 11); len(recs) != 1 {
		t.Fatalf("first hop lost: %+v", recs)
	}
}

func TestSharerNotRecommended(t *testing.T) {
	_, r := chainCtx(0.4, 2)
	r.Observe(dataset.Action{User: 0, Tweet: 5, Time: 10})
	r.Observe(dataset.Action{User: 1, Tweet: 5, Time: 11})
	if recs := r.Recommend(1, 5, 12); len(recs) != 0 {
		t.Fatalf("sharer still recommended their own share: %+v", recs)
	}
}

func TestEvictionDropsOldPosteriors(t *testing.T) {
	ctx, r := chainCtx(0.4, 2)
	r.Observe(dataset.Action{User: 0, Tweet: 5, Time: 10})
	if len(r.posts) != 1 {
		t.Fatalf("posts = %d", len(r.posts))
	}
	// An action far in the future evicts tweet 5's state (published at 0).
	r.Observe(dataset.Action{User: 0, Tweet: 6, Time: ctx.MaxAge + 100})
	if _, alive := r.posts[5]; alive {
		t.Error("expired posterior state not evicted")
	}
}

func TestConfigDefaults(t *testing.T) {
	r := New(Config{})
	if r.cfg.Threshold <= 0 || r.cfg.MaxDepth <= 0 || r.cfg.TrustP <= 0 || r.cfg.PriorK <= 0 {
		t.Errorf("defaults not applied: %+v", r.cfg)
	}
	if r.Name() != "Bayes" {
		t.Error("name")
	}
}
