package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

// The CI bench smoke runs these once: they pin the hot-path cost of the
// instruments every serving layer bumps per request (counter add,
// histogram observe, gauge set) and the sharded-vs-single contention
// comparison.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkCounterAddParallelUnsharded is the baseline the sharded
// counter is measured against: one atomic bouncing between cores.
func BenchmarkCounterAddParallelUnsharded(b *testing.B) {
	var v atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Add(1)
		}
	})
	if v.Load() == 0 {
		b.Fatal("no adds")
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	var h Histogram
	d := 250 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(d)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}
