// Package xrand provides a small, fast, deterministic random number
// generator plus the heavy-tailed samplers the synthetic Twitter generator
// needs (Zipf, discrete power law, bounded Pareto, weighted choice).
//
// math/rand would work, but a self-contained splitmix64/xoshiro generator
// guarantees the same stream on every platform and Go release, which is
// essential for byte-identical reproducible datasets.
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random generator seeded via splitmix64.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return r
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Fork derives an independent generator from the current stream. Forked
// streams let parallel workers each own a deterministic sub-stream.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential sample with the given mean. Mean must be > 0.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto sample in [lo, hi] with tail exponent
// alpha > 0. The distribution density is proportional to x^-(alpha+1).
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("xrand: Pareto requires 0 < lo < hi")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) trial, i.e. a sample in {0,1,2,...}. p must be in (0,1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric requires p in (0,1]")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a Poisson sample with the given mean (Knuth's method for
// small means, normal approximation above 64 to stay O(1)).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the n elements addressed by swap uniformly at random
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// selection order. It panics if k > n.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("xrand: Sample with k > n")
	}
	if k*4 >= n { // dense case: partial Fisher–Yates
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return p[:k:k]
	}
	// Sparse case: rejection sampling with a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
