package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// fixture is the shared differential-test setup: a small synthetic
// dataset split temporally, engine options with the freshness horizon
// opened wide so every recommendation stays servable regardless of
// timestamps (the same trick the persistence tests use).
type fixture struct {
	ds    *repro.Dataset
	train []repro.Action
	test  []repro.Action
	eopts repro.EngineOptions
	now   repro.Timestamp
}

func newFixture(t *testing.T, users int, seed uint64) *fixture {
	t.Helper()
	ds, err := gen.Generate(gen.DefaultConfig(users, seed))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := repro.SplitDataset(ds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	eopts := repro.DefaultEngineOptions()
	eopts.Train = train
	eopts.MaxAge = 1 << 40
	now := test[len(test)-1].Time + 1
	return &fixture{ds: ds, train: train, test: test, eopts: eopts, now: now}
}

func (fx *fixture) newFleet(t *testing.T, opts Options) *Router {
	t.Helper()
	r, err := New(fx.ds, fx.eopts, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (fx *fixture) feed(t *testing.T, r *Router) {
	t.Helper()
	for _, a := range fx.test {
		if err := r.Observe(a.User, a.Tweet, a.Time); err != nil {
			t.Fatalf("observe %+v: %v", a, err)
		}
	}
}

// recommendAllRouter serves every user once, for whole-fleet output
// comparisons.
func recommendAllRouter(r *Router, k int, now repro.Timestamp) [][]repro.Recommendation {
	out := make([][]repro.Recommendation, r.Dataset().NumUsers())
	for u := range out {
		out[u] = r.Recommend(repro.UserID(u), k, now)
	}
	return out
}

func assertSameFleetOutput(t *testing.T, want, got [][]repro.Recommendation, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d users", label, len(want), len(got))
	}
	served := 0
	for u := range want {
		if len(want[u]) != len(got[u]) {
			t.Fatalf("%s: user %d served %d vs %d recommendations", label, u, len(want[u]), len(got[u]))
		}
		for i := range want[u] {
			if want[u][i] != got[u][i] {
				t.Fatalf("%s: user %d rank %d: %+v vs %+v", label, u, i, want[u][i], got[u][i])
			}
		}
		served += len(want[u])
	}
	if served == 0 {
		t.Fatalf("%s: vacuous comparison, no user was served anything", label)
	}
}

func TestNewRejectsReservedOptions(t *testing.T) {
	fx := newFixture(t, 60, 7)
	bad := fx.eopts
	bad.TrackUsers = []repro.UserID{1}
	if _, err := New(fx.ds, bad, Options{Shards: 2}); err == nil {
		t.Error("TrackUsers accepted; ownership is the ring's job")
	}
	if _, err := New(fx.ds, fx.eopts, Options{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
}

// TestObserveRoutesToOwner pins the partitioning invariant: an action is
// applied on exactly its owner shard, and no other shard's observed log
// ever sees it.
func TestObserveRoutesToOwner(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 4})
	fx.feed(t, r)

	perShard := 0
	for i := 0; i < r.NumShards(); i++ {
		for _, a := range r.Shard(i).ObservedActions() {
			if got := r.Owner(a.User); got != i {
				t.Fatalf("action %+v applied on shard %d but owned by %d", a, i, got)
			}
			perShard++
		}
	}
	if perShard != len(fx.test) {
		t.Fatalf("shards hold %d actions, fed %d", perShard, len(fx.test))
	}

	merged := r.ObservedActions()
	if len(merged) != len(fx.test) {
		t.Fatalf("merged log holds %d actions, fed %d", len(merged), len(fx.test))
	}
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		if a.Time > b.Time || (a.Time == b.Time && a.User > b.User) {
			t.Fatalf("merged log out of order at %d: %+v then %+v", i, a, b)
		}
	}

	if got := r.MetricsRegistry().Counter("router/observes").Value(); got != uint64(len(fx.test)) {
		t.Errorf("router/observes = %d, want %d", got, len(fx.test))
	}
	var loadSum uint64
	for _, l := range r.ShardLoads() {
		loadSum += l
	}
	if loadSum != uint64(len(fx.test)) {
		t.Errorf("shard loads sum to %d, want %d", loadSum, len(fx.test))
	}
}

// TestRecommendServesFromOwnerShard: for a warm user the router must
// return the owner engine's output verbatim — no cross-shard blending on
// the hot path.
func TestRecommendServesFromOwnerShard(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 3})
	fx.feed(t, r)

	warm := 0
	for u := 0; u < fx.ds.NumUsers(); u++ {
		uid := repro.UserID(u)
		own := r.Shard(r.Owner(uid)).Recommend(uid, 10, fx.now)
		if len(own) == 0 {
			continue
		}
		warm++
		got := r.Recommend(uid, 10, fx.now)
		if len(got) != len(own) {
			t.Fatalf("user %d: router served %d, owner engine %d", u, len(got), len(own))
		}
		for i := range own {
			if got[i] != own[i] {
				t.Fatalf("user %d rank %d: router %+v, owner %+v", u, i, got[i], own[i])
			}
		}
	}
	if warm == 0 {
		t.Fatal("vacuous: no warm users")
	}
}

// TestColdStartFanout pins the scatter-gather merge: a user its owner
// shard cannot serve gets the summed per-shard cold-start partials, and
// the sum equals what mergeTopK reconstructs from the raw partials.
func TestColdStartFanout(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 4})
	dark := fx.newFleet(t, Options{Shards: 4, DisableColdStartFanout: true})
	fx.feed(t, r)
	fx.feed(t, dark)

	const k = 10
	coldServed := 0
	for u := 0; u < fx.ds.NumUsers(); u++ {
		uid := repro.UserID(u)
		if len(r.Shard(r.Owner(uid)).Recommend(uid, k, fx.now)) > 0 {
			continue // warm — fanout never triggers
		}
		if got := dark.Recommend(uid, k, fx.now); len(got) != 0 {
			t.Fatalf("user %d: fanout disabled but served %d", u, len(got))
		}
		partials := make([][]repro.Recommendation, r.NumShards())
		for i := 0; i < r.NumShards(); i++ {
			partials[i] = r.Shard(i).ColdStartPartial(uid, k, fx.now)
		}
		want := mergeTopK(partials, k)
		got := r.Recommend(uid, k, fx.now)
		if len(got) != len(want) {
			t.Fatalf("cold user %d: served %d, merged partials give %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cold user %d rank %d: %+v vs %+v", u, i, got[i], want[i])
			}
		}
		coldServed += len(got)
	}
	if coldServed == 0 {
		t.Fatal("vacuous: no cold user was served by the fanout")
	}
	if r.MetricsRegistry().Counter("router/fanouts").Value() == 0 {
		t.Error("router/fanouts never incremented")
	}
}

// TestCrossShardObserveCounter: the router must count every observe of a
// tweet already shared on a different shard — the lost-similarity
// signal — and must not count same-shard or single-shard traffic.
func TestCrossShardObserveCounter(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 2})

	// Find two users on different shards and one tweet.
	var u0, u1 repro.UserID
	found := false
	for u := 1; u < fx.ds.NumUsers() && !found; u++ {
		if r.Owner(repro.UserID(u)) != r.Owner(u0) {
			u1, found = repro.UserID(u), true
		}
	}
	if !found {
		t.Fatal("all users on one shard")
	}
	same := repro.UserID(0)
	for u := 1; u < fx.ds.NumUsers(); u++ {
		if repro.UserID(u) != u0 && r.Owner(repro.UserID(u)) == r.Owner(u0) {
			same = repro.UserID(u)
			break
		}
	}

	if err := r.Observe(u0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Observe(same, 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := r.CrossShardObserves(); got != 0 {
		t.Fatalf("same-shard co-retweet counted as cross-shard (%d)", got)
	}
	if err := r.Observe(u1, 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := r.CrossShardObserves(); got != 1 {
		t.Fatalf("cross-shard observes = %d, want 1", got)
	}
	// Every further action on the split tweet is lost mass, from either side.
	if err := r.Observe(u0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := r.CrossShardObserves(); got != 2 {
		t.Fatalf("cross-shard observes = %d, want 2", got)
	}
}

// TestSimilarityCrossShard: same-shard pairs get the engine value,
// cross-shard pairs get 0 plus a counted loss.
func TestSimilarityCrossShard(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 2})
	fx.feed(t, r)

	crossChecked, sameChecked := false, false
	for u := 0; u < fx.ds.NumUsers(); u++ {
		for v := u + 1; v < fx.ds.NumUsers(); v++ {
			uu, vv := repro.UserID(u), repro.UserID(v)
			if r.Owner(uu) == r.Owner(vv) {
				if got, want := r.Similarity(uu, vv), r.Shard(r.Owner(uu)).Similarity(uu, vv); got != want {
					t.Fatalf("same-shard sim(%d,%d) = %v, engine says %v", u, v, got, want)
				}
				sameChecked = true
			} else {
				before := r.MetricsRegistry().Counter("router/cross_shard_sim_zero").Value()
				if got := r.Similarity(uu, vv); got != 0 {
					t.Fatalf("cross-shard sim(%d,%d) = %v, want 0", u, v, got)
				}
				if after := r.MetricsRegistry().Counter("router/cross_shard_sim_zero").Value(); after != before+1 {
					t.Fatalf("cross-shard sim not counted (%d -> %d)", before, after)
				}
				crossChecked = true
			}
			if crossChecked && sameChecked {
				return
			}
		}
	}
	t.Fatal("vacuous: missing a same-shard or cross-shard pair")
}

// TestPropagateScoresMergesShards: the router result must be exactly the
// union of the per-shard propagations from the owner-partitioned seeds.
func TestPropagateScoresMergesShards(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 3})
	fx.feed(t, r)

	seeds := make([]repro.UserID, 0, fx.ds.NumUsers()/2)
	for u := 0; u < fx.ds.NumUsers(); u += 2 {
		seeds = append(seeds, repro.UserID(u))
	}
	got := r.PropagateScores(seeds)

	want := make(map[repro.UserID]float64)
	bySeed := make([][]repro.UserID, r.NumShards())
	for _, s := range seeds {
		bySeed[r.Owner(s)] = append(bySeed[r.Owner(s)], s)
	}
	for i, part := range bySeed {
		if len(part) == 0 {
			continue
		}
		for u, p := range r.Shard(i).PropagateScores(part) {
			want[u] += p
		}
	}
	if len(got) != len(want) {
		t.Fatalf("router propagated to %d users, per-shard union has %d", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("vacuous: propagation reached nobody")
	}
	for u, p := range want {
		if got[u] != p {
			t.Fatalf("user %d: router %v, union %v", u, got[u], p)
		}
	}
}

// TestMetricsRollup: the fleet snapshot must carry the router/* series
// and every shard engine's series under shard/<i>/.
func TestMetricsRollup(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 2})
	fx.feed(t, r)
	r.RefreshGraph(repro.UpdateFromScratch)

	snap := r.Metrics()
	if snap.Counters["router/observes"] != uint64(len(fx.test)) {
		t.Errorf("router/observes = %d, want %d", snap.Counters["router/observes"], len(fx.test))
	}
	for i := 0; i < r.NumShards(); i++ {
		prefix := fmt.Sprintf("shard/%d/", i)
		found := false
		for name := range snap.Counters {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* counters in the rollup", prefix)
		}
	}
	var perShard uint64
	for i := 0; i < r.NumShards(); i++ {
		perShard += snap.Counters[fmt.Sprintf("router/shard/%d/observes", i)]
	}
	if perShard != uint64(len(fx.test)) {
		t.Errorf("per-shard observe counters sum to %d, want %d", perShard, len(fx.test))
	}
}

// TestAsyncObserveEquivalence: the queued ingest path must converge to
// the same state as synchronous routing — per-user FIFO is preserved
// because a user's actions all land in one mailbox.
func TestAsyncObserveEquivalence(t *testing.T) {
	fx := newFixture(t, 60, 7)
	syncFleet := fx.newFleet(t, Options{Shards: 4})
	async := fx.newFleet(t, Options{Shards: 4, QueueDepth: 16})
	fx.feed(t, syncFleet)

	if err := syncFleet.ObserveAsync(0, 0, 1); err == nil {
		t.Error("ObserveAsync accepted without QueueDepth")
	}
	for _, a := range fx.test {
		if err := async.ObserveAsync(a.User, a.Tweet, a.Time); err != nil {
			t.Fatal(err)
		}
	}
	if err := async.Flush(); err != nil {
		t.Fatalf("flush reported async apply error: %v", err)
	}
	if got := async.MetricsRegistry().Counter("router/async/applied").Value(); got != uint64(len(fx.test)) {
		t.Errorf("async applied %d, fed %d", got, len(fx.test))
	}
	assertSameFleetOutput(t,
		recommendAllRouter(syncFleet, 10, fx.now),
		recommendAllRouter(async, 10, fx.now),
		"async vs sync ingest")
	if err := async.Close(); err != nil {
		t.Fatal(err)
	}
	if err := async.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestRouterRace exercises every router entry point concurrently; run
// under -race (the CI race matrix includes this package) it is the
// thread-safety contract of the fleet facade.
func TestRouterRace(t *testing.T) {
	fx := newFixture(t, 60, 7)
	r := fx.newFleet(t, Options{Shards: 4, QueueDepth: 8})
	defer r.Close()

	var wg sync.WaitGroup

	// Writer: streams the test split through the sync path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, a := range fx.test {
			_ = r.Observe(a.User, a.Tweet, a.Time)
		}
	}()
	// Async writer: replays the same actions through the mailboxes
	// (idempotence is not required — this is a race test, not a
	// correctness diff).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, a := range fx.test {
			_ = r.ObserveAsync(a.User, a.Tweet, a.Time)
		}
		_ = r.Flush()
	}()
	// Readers: a bounded burst of every read entry point.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < 300; i++ {
				u := repro.UserID(rng.Intn(fx.ds.NumUsers()))
				v := repro.UserID(rng.Intn(fx.ds.NumUsers()))
				r.Recommend(u, 10, fx.now)
				r.Similarity(u, v)
				r.PropagateScores([]repro.UserID{u, v})
				_ = r.ShardLoads()
				_ = r.Metrics()
			}
		}(uint64(w) + 1)
	}
	// Maintenance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			r.RefreshGraphStats(repro.UpdateFromScratch)
		}
	}()

	wg.Wait()
}
