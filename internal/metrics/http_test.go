package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func testSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("engine/requests").Add(5)
	r.Histogram("engine/recommend/latency_ns").Observe(1500)
	return r.Snapshot()
}

func TestHandlerText(t *testing.T) {
	h := Handler(testSnapshot)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "engine/requests") {
		t.Fatalf("text body missing counter:\n%s", rec.Body.String())
	}
}

func TestHandlerJSON(t *testing.T) {
	h := Handler(testSnapshot)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counter("engine/requests") != 5 {
		t.Fatalf("JSON body lost counter: %+v", s)
	}
}

func TestAcceptsJSON(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", false},
		{"application/json", true},
		{"application/JSON", true},
		{" application/json ", true},
		{"application/json; charset=utf-8", true},
		{"application/json;q=0.9", true},
		{"text/html, application/json;q=0.8, */*;q=0.1", true},
		{"text/plain, application/*", true},
		{"application/json-patch+json", false},
		{"application/json;q=0", false},
		{"application/json; q=0.000", false},
		{"application/json; charset=utf-8; q=0", false},
		{"text/*;q=0", false},
	}
	for _, c := range cases {
		if got := AcceptsJSON(c.accept); got != c.want {
			t.Errorf("AcceptsJSON(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestHandlerAcceptNegotiation pins the bug the exact-equality check had:
// an Accept header with parameters or multiple ranges must still get
// JSON, and a plain-text preference must still get text.
func TestHandlerAcceptNegotiation(t *testing.T) {
	h := Handler(testSnapshot)
	cases := []struct {
		accept   string
		wantJSON bool
	}{
		{"application/json; charset=utf-8", true},
		{"text/html, application/json;q=0.9", true},
		{"text/plain", false},
		{"application/json;q=0", false},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/debug/metrics", nil)
		req.Header.Set("Accept", c.accept)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		gotJSON := rec.Header().Get("Content-Type") == "application/json"
		if gotJSON != c.wantJSON {
			t.Errorf("Accept %q: served JSON=%v, want %v", c.accept, gotJSON, c.wantJSON)
		}
	}
}

func TestDebugMux(t *testing.T) {
	mux := NewDebugMux(testSnapshot)
	for _, path := range []string{"/debug/metrics", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", path, rec.Code)
		}
	}
}
