package stats

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/similarity"
)

func handDataset() *dataset.Dataset {
	b := graph.NewBuilder(4, 4)
	b.SetNumNodes(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	return &dataset.Dataset{
		Graph: b.Build(),
		Tweets: []dataset.Tweet{
			{Author: 0, Time: 0},
			{Author: 1, Time: 10 * ids.Hour},
			{Author: 2, Time: 20 * ids.Hour},
		},
		Actions: []dataset.Action{
			{User: 1, Tweet: 0, Time: 30 * ids.Minute},
			{User: 2, Tweet: 0, Time: 50 * ids.Hour},
			{User: 3, Tweet: 1, Time: 10*ids.Hour + 30*ids.Minute},
		},
	}
}

func TestFeatures(t *testing.T) {
	ds := handDataset()
	f := Features(ds, 4, 1)
	if f.Nodes != 4 || f.Edges != 4 || f.Tweets != 3 || f.Actions != 3 {
		t.Fatalf("features %+v", f)
	}
	if f.AvgOutDegree != 1 || f.MaxOutDegree != 1 {
		t.Errorf("degrees %+v", f)
	}
	// Directed ring of 4: diameter 3, avg path (1+2+3)/3 = 2.
	if f.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", f.Diameter)
	}
	if f.AvgPathLength != 2 {
		t.Errorf("avg path = %v, want 2", f.AvgPathLength)
	}
}

func TestPaths(t *testing.T) {
	ds := handDataset()
	p := Paths(ds.Graph, 4, 1)
	// Ring: from each of 4 sources, one node at d=1,2,3.
	if p.Hist[1] != 4 || p.Hist[2] != 4 || p.Hist[3] != 4 || p.Impossible != 0 {
		t.Fatalf("paths %+v", p)
	}
}

func TestRetweetsPerTweetBuckets(t *testing.T) {
	ds := handDataset()
	b := RetweetsPerTweet(ds)
	// tweet0 → 2 retweets (bucket "2-5"), tweet1 → 1, tweet2 → 0.
	if b.Counts[0] != 1 || b.Counts[1] != 1 || b.Counts[2] != 1 {
		t.Fatalf("buckets %v %v", b.Labels, b.Counts)
	}
}

func TestRetweetsPerUser(t *testing.T) {
	ds := handDataset()
	s := RetweetsPerUser(ds)
	if s.Counts[0] != 1 { // user 0 never retweets
		t.Errorf("zero bucket %v", s.Counts)
	}
	if s.Counts[1] != 3 { // users 1,2,3 have 1 each
		t.Errorf("1-9 bucket %v", s.Counts)
	}
	if s.Mean != 0.75 || s.NeverShare != 0.25 {
		t.Errorf("mean %v never %v", s.Mean, s.NeverShare)
	}
}

func TestLifetimes(t *testing.T) {
	ds := handDataset()
	s := Lifetimes(ds)
	// tweet0 lifetime 50h (24-72h bucket), tweet1 30min (<1h), tweet2
	// never retweeted (excluded).
	if s.Counts[0] != 1 || s.Counts[3] != 1 {
		t.Fatalf("lifetime buckets %v", s.Counts)
	}
	if s.DeadWithin1h != 0.5 || s.DeadWithin72h != 1 {
		t.Errorf("CDF %v %v", s.DeadWithin1h, s.DeadWithin72h)
	}
}

func TestHomophilyTables(t *testing.T) {
	cfg := gen.DefaultConfig(600, 17)
	cfg.TweetsPerUser = 8
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := similarity.NewStore(ds.NumUsers(), ds.NumTweets(), ds.Actions)
	hc := HomophilyConfig{SampleSize: 60, MinRetweets: 3, MaxDistance: 6, Seed: 1}

	rows := SimilarityByDistance(ds, store, hc)
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	var pct float64
	var pairs int64
	for _, r := range rows {
		pct += r.Percent
		pairs += r.Pairs
		if r.AvgSim < 0 || r.AvgSim > 1 {
			t.Fatalf("avg sim out of range: %+v", r)
		}
	}
	if pairs == 0 {
		t.Fatal("no similar pairs found")
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %v", pct)
	}
	// Homophily: distance-1 pairs more similar than distance-3 pairs.
	if rows[0].AvgSim <= rows[2].AvgSim {
		t.Errorf("no homophily decay: d1=%v d3=%v", rows[0].AvgSim, rows[2].AvgSim)
	}

	top := TopNDistance(ds, store, 5, hc)
	if len(top) != 5 {
		t.Fatalf("%d top rows", len(top))
	}
	for _, r := range top {
		if r.AvgDistance < 1 {
			t.Fatalf("rank %d avg distance %v", r.Rank, r.AvgDistance)
		}
		sum := r.Beyond
		for _, p := range r.DistPct {
			sum += p
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("rank %d distribution sums to %v", r.Rank, sum)
		}
	}
	// The most similar user should be closer on average than rank 5.
	if top[0].AvgDistance > top[4].AvgDistance {
		t.Errorf("rank-distance not increasing: %v vs %v", top[0].AvgDistance, top[4].AvgDistance)
	}
}
