package community

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/wgraph"
)

// twoCliques builds a similarity graph with two dense weighted cliques
// (0-3 and 4-7) joined by one weak bridge edge.
func twoCliques() *wgraph.Graph {
	var edges []wgraph.Edge
	clique := func(members []int, w float32) {
		for _, a := range members {
			for _, b := range members {
				if a != b {
					edges = append(edges, wgraph.Edge{From: ids.UserID(a), To: ids.UserID(b), Weight: w})
				}
			}
		}
	}
	clique([]int{0, 1, 2, 3}, 0.5)
	clique([]int{4, 5, 6, 7}, 0.4)
	edges = append(edges, wgraph.Edge{From: 3, To: 4, Weight: 0.01})
	return wgraph.NewFromEdges(10, edges) // 8, 9 isolated
}

func TestDetectTwoCliques(t *testing.T) {
	e := Detect(twoCliques(), nil, DefaultConfig())
	if e.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", e.NumClusters())
	}
	for _, pair := range [][2]ids.UserID{{0, 1}, {1, 2}, {4, 5}, {6, 7}} {
		if e.Label(pair[0]) != e.Label(pair[1]) {
			t.Errorf("users %d and %d in different clusters", pair[0], pair[1])
		}
	}
	if e.Label(0) == e.Label(5) {
		t.Errorf("cliques merged into one cluster")
	}
	if got := e.Label(8); got != NoCluster {
		t.Errorf("isolated user labelled %d, want NoCluster", got)
	}
	// Within-clique overlap must dominate cross-clique overlap.
	if in, out := e.Overlap(0, 1), e.Overlap(0, 5); in <= out {
		t.Errorf("Overlap(0,1)=%v not above Overlap(0,5)=%v", in, out)
	}
	if e.Overlap(8, 9) != 0 {
		t.Errorf("isolated users overlap nonzero")
	}
}

func TestOverlapProperties(t *testing.T) {
	e := Detect(twoCliques(), nil, DefaultConfig())
	for u := 0; u < e.NumUsers(); u++ {
		for v := 0; v < e.NumUsers(); v++ {
			a, b := e.Overlap(ids.UserID(u), ids.UserID(v)), e.Overlap(ids.UserID(v), ids.UserID(u))
			if a != b {
				t.Fatalf("Overlap(%d,%d)=%v != Overlap(%d,%d)=%v", u, v, a, v, u, b)
			}
			if a < 0 || a > 1 {
				t.Fatalf("Overlap(%d,%d)=%v out of [0,1]", u, v, a)
			}
		}
	}
	// Membership vectors are normalized and cluster-sorted.
	for u := 0; u < e.NumUsers(); u++ {
		cs, ws := e.Membership(ids.UserID(u))
		sum := 0.0
		for i := range cs {
			sum += float64(ws[i])
			if i > 0 && cs[i] <= cs[i-1] {
				t.Fatalf("user %d clusters not strictly ascending: %v", u, cs)
			}
		}
		if len(cs) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("user %d weights sum %v, want 1", u, sum)
		}
	}
}

func TestColdFillFromFollowees(t *testing.T) {
	sim := twoCliques()
	// User 8 (no similarity edges) follows 0, 1 (cluster A) and 4 (B);
	// user 9 follows nobody.
	b := graph.NewBuilder(10, 3)
	b.SetNumNodes(10)
	b.AddEdge(8, 0)
	b.AddEdge(8, 1)
	b.AddEdge(8, 4)
	e := Detect(sim, b.Build(), DefaultConfig())
	cs, ws := e.Membership(8)
	if len(cs) != 2 {
		t.Fatalf("cold vector len %d, want 2 clusters: %v %v", len(cs), cs, ws)
	}
	// Two of three followees are in 0's cluster: that entry must dominate.
	var wA, wB float32
	for i, c := range cs {
		switch c {
		case e.Label(0):
			wA = ws[i]
		case e.Label(4):
			wB = ws[i]
		}
	}
	if wA <= wB {
		t.Errorf("cold weights A=%v B=%v, want followee-majority cluster heavier", wA, wB)
	}
	// Cold user overlaps its majority community more than the other.
	if e.Overlap(8, 0) <= e.Overlap(8, 5) {
		t.Errorf("cold user overlap: A=%v B=%v", e.Overlap(8, 0), e.Overlap(8, 5))
	}
	if cs9, _ := e.Membership(9); len(cs9) != 0 {
		t.Errorf("followee-less cold user got vector %v", cs9)
	}
}

// TestDetectDeterministic pins the satellite contract: identical graphs
// produce identical labels and vectors across runs and worker counts —
// the synchronous-update guarantee asynchronous label propagation
// (internal/bubbles) cannot give.
func TestDetectDeterministic(t *testing.T) {
	g := randomGraph(400, 2600, 42)
	base := Detect(g, nil, Config{TopC: 4, MaxRounds: 16, MinClusterSize: 2, Workers: 1})
	for _, workers := range []int{1, 2, 3, 8} {
		for run := 0; run < 3; run++ {
			got := Detect(g, nil, Config{TopC: 4, MaxRounds: 16, MinClusterSize: 2, Workers: workers})
			if !equalEmbeddings(base, got) {
				t.Fatalf("detection differs at workers=%d run=%d", workers, run)
			}
		}
	}
}

func equalEmbeddings(a, b *Embeddings) bool {
	if len(a.labels) != len(b.labels) || len(a.cluster) != len(b.cluster) || a.rounds != b.rounds {
		return false
	}
	for i := range a.labels {
		if a.labels[i] != b.labels[i] {
			return false
		}
	}
	for i := range a.ptr {
		if a.ptr[i] != b.ptr[i] {
			return false
		}
	}
	for i := range a.cluster {
		if a.cluster[i] != b.cluster[i] || a.weight[i] != b.weight[i] {
			return false
		}
	}
	return true
}

// randomGraph builds a deterministic pseudo-random weighted graph via
// splitmix64 (no math/rand dependency drift between Go versions).
func randomGraph(n, m int, seed uint64) *wgraph.Graph {
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	edges := make([]wgraph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := ids.UserID(next() % uint64(n))
		v := ids.UserID(next() % uint64(n))
		if u == v {
			continue
		}
		w := float32(next()%1000+1) / 1000
		edges = append(edges, wgraph.Edge{From: u, To: v, Weight: w})
	}
	return wgraph.NewFromEdges(n, edges)
}

func TestMeanVectorLenAndCovered(t *testing.T) {
	e := Detect(twoCliques(), nil, DefaultConfig())
	if e.Covered() != 8 {
		t.Fatalf("covered = %d, want 8", e.Covered())
	}
	if e.MeanVectorLen() <= 0 {
		t.Fatalf("mean vector len %v", e.MeanVectorLen())
	}
}

// OverlapSource must agree exactly with Overlap for every pair, across
// repeated BeginSource calls reusing one scratch.
func TestOverlapSourceMatchesOverlap(t *testing.T) {
	sim := randomGraph(120, 600, 3)
	e := Detect(sim, nil, DefaultConfig())
	var sc OverlapScratch
	for u := 0; u < e.NumUsers(); u += 7 {
		e.BeginSource(&sc, ids.UserID(u))
		for v := 0; v < e.NumUsers(); v++ {
			got := e.OverlapSource(&sc, ids.UserID(v))
			want := e.Overlap(ids.UserID(u), ids.UserID(v))
			if got != want {
				t.Fatalf("overlap(%d,%d): source %v, merge %v", u, v, got, want)
			}
		}
	}
}
