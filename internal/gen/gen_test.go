package gen

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ids"
)

// smallConfig returns a fast configuration for tests.
func smallConfig(seed uint64) Config {
	c := DefaultConfig(400, seed)
	c.TweetsPerUser = 6
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUsers() != b.NumUsers() || a.NumActions() != b.NumActions() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.NumUsers(), a.NumActions(), b.NumUsers(), b.NumActions())
	}
	if !reflect.DeepEqual(a.Tweets, b.Tweets) {
		t.Fatal("tweets differ between same-seed runs")
	}
	if !reflect.DeepEqual(a.Actions, b.Actions) {
		t.Fatal("actions differ between same-seed runs")
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("graphs differ between same-seed runs")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	if reflect.DeepEqual(a.Actions, b.Actions) {
		t.Fatal("different seeds produced identical action logs")
	}
}

func TestGeneratedDatasetIsValid(t *testing.T) {
	ds, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NumUsers = 5 },
		func(c *Config) { c.NumCommunities = 0 },
		func(c *Config) { c.MeanFollowees = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.BaseRetweetP = 1.5 },
		func(c *Config) { c.NeverRetweetP = 1 },
	}
	for i, mutate := range cases {
		c := smallConfig(1)
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCalibrationShape(t *testing.T) {
	c := DefaultConfig(1500, 11)
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}

	// Degree calibration: the mean out-degree should land near
	// MeanFollowees (reciprocity adds some).
	avg := float64(ds.Graph.NumEdges()) / float64(ds.NumUsers())
	if avg < c.MeanFollowees*0.7 || avg > c.MeanFollowees*1.6 {
		t.Errorf("avg out-degree %.1f, want near %.1f", avg, c.MeanFollowees)
	}

	// Never-retweet cohort near NeverRetweetP.
	counts := dataset.UserRetweetCounts(ds.NumUsers(), ds.Actions)
	zero := 0
	for _, ct := range counts {
		if ct == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(counts))
	if frac < c.NeverRetweetP*0.8 || frac > c.NeverRetweetP*1.5 {
		t.Errorf("never-retweet fraction %.2f, want near %.2f", frac, c.NeverRetweetP)
	}

	// Heavy-tailed tweet popularity: most tweets never retweeted, a few
	// popular ones exist.
	pop := dataset.RetweetCounts(ds.NumTweets(), ds.Actions)
	never, popular := 0, 0
	for _, p := range pop {
		switch {
		case p == 0:
			never++
		case p >= 20:
			popular++
		}
	}
	if float64(never) < 0.3*float64(len(pop)) {
		t.Errorf("only %d/%d tweets never retweeted; want a dominant zero bucket", never, len(pop))
	}
	if popular == 0 {
		t.Error("no popular tweets generated; the popularity tail is missing")
	}

	// Actions must be time sorted and within the duration.
	for i, a := range ds.Actions {
		if a.Time < 0 || a.Time >= c.Duration {
			t.Fatalf("action %d time %v out of range", i, a.Time)
		}
		if i > 0 && a.Time < ds.Actions[i-1].Time {
			t.Fatal("actions not sorted by time")
		}
	}
}

func TestHomophilySignal(t *testing.T) {
	// Users at distance 1-2 must be more similar on average than random
	// pairs — the property SimGraph exploits. Verified through community
	// co-membership driving co-retweets.
	ds, err := Generate(DefaultConfig(1200, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Build profiles and compare mean similarity of followed pairs vs
	// random pairs.
	type pair struct{ a, b ids.UserID }
	var followPairs, randomPairs []pair
	for u := 0; u < 300; u++ {
		for _, v := range ds.Graph.Out(ids.UserID(u)) {
			followPairs = append(followPairs, pair{ids.UserID(u), v})
			if len(followPairs) >= 2000 {
				break
			}
		}
		randomPairs = append(randomPairs, pair{ids.UserID(u), ids.UserID((u*709 + 13) % 1200)})
	}
	profiles := make(map[ids.UserID]map[ids.TweetID]struct{})
	for _, a := range ds.Actions {
		m := profiles[a.User]
		if m == nil {
			m = make(map[ids.TweetID]struct{})
			profiles[a.User] = m
		}
		m[a.Tweet] = struct{}{}
	}
	jaccard := func(p pair) float64 {
		pa, pb := profiles[p.a], profiles[p.b]
		if len(pa) == 0 || len(pb) == 0 {
			return 0
		}
		inter := 0
		for t := range pa {
			if _, ok := pb[t]; ok {
				inter++
			}
		}
		return float64(inter) / float64(len(pa)+len(pb)-inter)
	}
	var fSum, rSum float64
	for _, p := range followPairs {
		fSum += jaccard(p)
	}
	for _, p := range randomPairs {
		rSum += jaccard(p)
	}
	fMean := fSum / float64(len(followPairs))
	rMean := rSum / float64(len(randomPairs))
	if fMean <= rMean {
		t.Errorf("no homophily: follow-pair similarity %.5f <= random-pair %.5f", fMean, rMean)
	}
}
