package loadgen

import (
	"sync"
	"testing"
	"time"
)

// TestReservoirUniform is the regression test for the first-N "reservoir"
// bug: feed a stream whose first half is fast (warm-up) and second half
// slow (steady state). A first-N sampler reports the warm-up median; a
// genuine reservoir's sample median lands in the slow half.
func TestReservoirUniform(t *testing.T) {
	r := NewReservoir(1024, 7)
	const n = 200_000
	for i := 0; i < n; i++ {
		if i < n/2 {
			r.Observe(1 * time.Microsecond)
		} else {
			r.Observe(1 * time.Millisecond)
		}
	}
	if r.Seen() != n {
		t.Fatalf("seen %d, want %d", r.Seen(), n)
	}
	if r.Len() != 1024 {
		t.Fatalf("sample size %d, want 1024", r.Len())
	}
	slow := 0
	for _, q := range r.Quantiles(func() []float64 {
		qs := make([]float64, 101)
		for i := range qs {
			qs[i] = float64(i) / 100
		}
		return qs
	}()...) {
		if q >= time.Millisecond {
			slow++
		}
	}
	// The slow half should hold ~50% of the sample; 30%..70% leaves wide
	// slack for sampling noise at 1024 samples while still failing hard
	// for a first-N sampler (which would hold 0%).
	if slow < 30 || slow > 70 {
		t.Fatalf("slow-half share of quantile sweep = %d%%, want ~50%%", slow)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(64, 42), NewReservoir(64, 42)
	for i := 0; i < 10_000; i++ {
		d := time.Duration(i) * time.Nanosecond
		a.Observe(d)
		b.Observe(d)
	}
	qa := a.Quantiles(0.5, 0.9, 0.99)
	qb := b.Quantiles(0.5, 0.9, 0.99)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("same seed diverged: %v vs %v", qa, qb)
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(16, 1)
	if got := r.Quantiles(0.5); got[0] != 0 {
		t.Fatalf("empty reservoir quantile = %v, want 0", got[0])
	}
	r.Observe(5 * time.Millisecond)
	qs := r.Quantiles(0, 0.5, 1)
	for _, q := range qs {
		if q != 5*time.Millisecond {
			t.Fatalf("single-sample quantiles = %v", qs)
		}
	}
	if r.Len() != 1 || r.Seen() != 1 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
}

func TestReservoirConcurrent(t *testing.T) {
	r := NewReservoir(256, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Observe(time.Duration(w*i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if r.Seen() != 40_000 {
		t.Fatalf("seen %d, want 40000", r.Seen())
	}
	if r.Len() != 256 {
		t.Fatalf("len %d, want 256", r.Len())
	}
}
