package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/metrics"
	"repro/internal/recsys"
)

const (
	// MaxShards caps the fleet size: the cross-shard loss tracker packs
	// the set of shards that observed each tweet into one 64-bit mask.
	MaxShards = 64
	// DefaultReplicas is the virtual-node count per shard. 128 keeps the
	// max/mean key imbalance of hashed ownership under ~1.15 at 64 shards
	// (see TestRingKeyBalance) while the ring stays small enough that
	// Owner's binary search costs a handful of cache lines.
	DefaultReplicas = 128
)

// Options configures a Router. The zero value is not valid; set Shards.
type Options struct {
	// Shards is the engine-shard count (1..MaxShards). 1 is a valid
	// degenerate fleet — the router then adds only routing overhead,
	// which is exactly the baseline BENCH_shard.json measures against.
	Shards int
	// Replicas is the virtual-node count per shard on the hash ring
	// (<= 0 takes DefaultReplicas).
	Replicas int
	// Seed positions the ring's virtual nodes (0 is a valid seed). The
	// same (Shards, Replicas, Seed) triple always produces the same
	// user→shard ownership.
	Seed uint64
	// QueueDepth, when > 0, enables the per-shard asynchronous ingest
	// queues behind ObserveAsync: each shard gets a bounded mailbox and
	// one applier goroutine, so a single producer can keep every shard
	// busy without blocking on the slowest one. 0 disables ObserveAsync.
	QueueDepth int
	// DisableColdStartFanout turns off the scatter-gather cold-start
	// merge: a user whose owner shard has no candidates is then served
	// nothing instead of the cross-shard followee aggregate.
	DisableColdStartFanout bool
}

// Router fans the Engine API out across a consistent-hash fleet of
// shards. Each shard is a full repro.Engine that owns a user partition:
// its profile store, candidate pools, and propagation state cover only
// the users the ring assigns to it, so the shards share no mutable state
// and Observe throughput scales with shards × cores instead of
// serializing behind one RWMutex.
//
// What is exact and what is approximate: Observe, Recommend for a warm
// user, PropagateScores, and crash recovery are per-shard-exact (each
// user's state lives wholly on its owner). What degrades is the
// similarity *signal*: a co-retweet between users on different shards
// can no longer become a similarity edge, because neither shard sees
// both profiles. The router counts every such event
// (router/cross_shard_observes) and the quality cost is measured — not
// assumed — by internal/eval's QualityDelta against a single-engine
// oracle (see eval_test.go and BENCH_shard.json).
//
// Router is safe for concurrent use: its own state is immutable after
// construction except for atomic counters, and each shard enforces its
// own engine-level contract.
type Router struct {
	ring   *Ring
	shards []*repro.Engine
	ds     *repro.Dataset
	opts   Options

	// dirs are the per-shard durability directories when the router was
	// built by Open; nil for in-memory fleets.
	dirs []string

	// tweetShards[t] is the atomic bitmask of shards that observed a
	// share of tweet t. A second distinct shard joining the mask means
	// co-retweeters of t are now split across engines and their
	// similarity edges are lost — the honest price of partitioning,
	// surfaced as a counter instead of silently degrading quality.
	tweetShards []uint64

	queues []*shardQueue
	async  *asyncState

	closeOnce sync.Once
	closeErr  error

	// Router-level instruments. Shard-local engine registries are rolled
	// up (prefixed shard/<i>/) by Metrics.
	reg            *metrics.Registry
	mObserves      *metrics.Counter   // router/observes
	mRecommends    *metrics.Counter   // router/recommends
	mFanouts       *metrics.Counter   // router/fanouts (scatter-gather recommends)
	mCrossObserves *metrics.Counter   // router/cross_shard_observes
	mCrossSim      *metrics.Counter   // router/cross_shard_sim_zero
	mPropFanouts   *metrics.Counter   // router/propagate_fanouts
	mShardObserves []*metrics.Counter // router/shard/<i>/observes
	mShardRecs     []*metrics.Counter // router/shard/<i>/recommends
	mQueueDepth    []*metrics.Gauge   // router/shard/<i>/queue_depth
}

// newRouter wires the common Router shell around a ring and a shard
// slice; New and Open finish it with engines.
func newRouter(ds *repro.Dataset, ring *Ring, opts Options) *Router {
	r := &Router{
		ring:        ring,
		shards:      make([]*repro.Engine, ring.NumShards()),
		ds:          ds,
		opts:        opts,
		tweetShards: make([]uint64, ds.NumTweets()),
		reg:         metrics.NewRegistry(),
	}
	r.mObserves = r.reg.Counter("router/observes")
	r.mRecommends = r.reg.Counter("router/recommends")
	r.mFanouts = r.reg.Counter("router/fanouts")
	r.mCrossObserves = r.reg.Counter("router/cross_shard_observes")
	r.mCrossSim = r.reg.Counter("router/cross_shard_sim_zero")
	r.mPropFanouts = r.reg.Counter("router/propagate_fanouts")
	for i := 0; i < ring.NumShards(); i++ {
		r.mShardObserves = append(r.mShardObserves, r.reg.Counter(fmt.Sprintf("router/shard/%d/observes", i)))
		r.mShardRecs = append(r.mShardRecs, r.reg.Counter(fmt.Sprintf("router/shard/%d/recommends", i)))
		r.mQueueDepth = append(r.mQueueDepth, r.reg.Gauge(fmt.Sprintf("router/shard/%d/queue_depth", i)))
	}
	return r
}

// NumShards returns the fleet size.
func (r *Router) NumShards() int { return len(r.shards) }

// Owner returns the shard index that owns user u.
func (r *Router) Owner(u repro.UserID) int { return r.ring.Owner(u) }

// Shard exposes one shard's engine, for tests and tooling that need the
// underlying per-shard view (e.g. asserting an action landed only on its
// owner). Production callers should stay on the Router API.
func (r *Router) Shard(i int) *repro.Engine { return r.shards[i] }

// Ring returns the ownership ring.
func (r *Router) Ring() *Ring { return r.ring }

// Dataset returns the dataset every shard serves. It is shared by all
// shards and must be treated as immutable — see (*repro.Engine).Dataset.
func (r *Router) Dataset() *repro.Dataset { return r.ds }

// Observe streams one retweet to the owning shard. Only that shard's
// writers quiesce; the other N-1 shards keep serving and observing in
// parallel — this is the scaling move the single-engine RWMutex blocked.
// The error contract is the owning engine's (see repro.Engine.Observe).
func (r *Router) Observe(u repro.UserID, t repro.TweetID, at repro.Timestamp) error {
	return r.observeShard(r.ring.Owner(u), u, t, at)
}

// observeShard applies one action on a known shard (the sync path and
// the queue appliers share it).
func (r *Router) observeShard(s int, u repro.UserID, t repro.TweetID, at repro.Timestamp) error {
	err := r.shards[s].Observe(u, t, at)
	if err != nil && !errors.Is(err, repro.ErrWALRecordLogged) {
		return err
	}
	r.mObserves.Inc()
	r.mShardObserves[s].Inc()
	r.noteTweetShard(s, t)
	return err
}

// noteTweetShard folds shard s into tweet t's observer mask and counts a
// cross-shard loss when t already had sharers on a different shard: from
// that moment on, similarity mass between s's retweeters of t and the
// other shards' retweeters of t is unrecoverable.
func (r *Router) noteTweetShard(s int, t repro.TweetID) {
	if len(r.shards) == 1 || int(t) >= len(r.tweetShards) {
		return
	}
	addr := &r.tweetShards[t]
	bit := uint64(1) << uint(s)
	for {
		old := atomic.LoadUint64(addr)
		if old&^bit != 0 {
			// Another shard already observed this tweet: this action's
			// cross-shard co-retweet signal is lost. Counted per action,
			// so the counter tracks lost similarity *mass*, not just the
			// first split.
			r.mCrossObserves.Inc()
		}
		if old&bit != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return
		}
	}
}

// Recommend serves user u from their owner shard. When the owner has no
// candidates (a cold or evicted user) and cold-start fanout is enabled,
// the router scatter-gathers the engine-level cold-start aggregation
// across every shard and merges the per-shard partial sums: each
// followee of u is tracked on exactly one shard and every engine
// normalizes by the user's full followee count, so the merged aggregate
// equals the single-engine fallback over the union of the shards' pools.
func (r *Router) Recommend(u repro.UserID, k int, now repro.Timestamp) []repro.Recommendation {
	if k <= 0 || int(u) >= r.ds.NumUsers() {
		return nil
	}
	s := r.ring.Owner(u)
	r.mRecommends.Inc()
	r.mShardRecs[s].Inc()
	out := r.shards[s].Recommend(u, k, now)
	if len(out) > 0 || r.opts.DisableColdStartFanout {
		return out
	}
	return r.coldStartFanout(u, k, now)
}

// coldStartFanout merges every shard's ColdStartPartial into one top-k.
// Scores are summed: the per-shard lists are averages over the same
// (global) followee count restricted to disjoint followee subsets, so
// the sum reconstructs the global average. The partials are UNtruncated
// — truncation happens once, after the merge, in mergeTopK. Merging
// per-shard top-k lists instead would drop any tweet whose summed score
// belongs in the merged top-k but that no single shard ranks that high
// (the classic distributed top-k mistake; pinned by
// TestColdStartFanoutKeepsCrossShardWinner).
func (r *Router) coldStartFanout(u repro.UserID, k int, now repro.Timestamp) []repro.Recommendation {
	r.mFanouts.Inc()
	partials := make([][]repro.Recommendation, len(r.shards))
	if len(r.shards) == 1 {
		partials[0] = r.shards[0].ColdStartPartial(u, k, now)
	} else {
		var wg sync.WaitGroup
		for i := range r.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partials[i] = r.shards[i].ColdStartPartial(u, k, now)
			}(i)
		}
		wg.Wait()
	}
	return mergeTopK(partials, k)
}

// mergeTopK sums the scores of every (shard, tweet) partial and keeps
// the k best. Exported logic kept package-private; the Router methods
// are the API.
func mergeTopK(partials [][]repro.Recommendation, k int) []repro.Recommendation {
	agg := make(map[repro.TweetID]float64)
	for _, part := range partials {
		for _, rec := range part {
			agg[rec.Tweet] += rec.Score
		}
	}
	if len(agg) == 0 {
		return nil
	}
	top := recsys.NewTopK(k)
	for t, s := range agg {
		top.Offer(t, s)
	}
	ranked := top.Ranked()
	out := make([]repro.Recommendation, len(ranked))
	for i, sc := range ranked {
		out[i] = repro.Recommendation{Tweet: sc.Tweet, Score: sc.Score}
	}
	return out
}

// Similarity returns sim(u, v) when both users live on the same shard,
// and 0 otherwise: neither engine holds both profiles, so a cross-shard
// pair has no computable similarity. The zero is counted
// (router/cross_shard_sim_zero) rather than hidden — it is the same
// partitioning cost the cross-shard observe counter tracks on the write
// path.
func (r *Router) Similarity(u, v repro.UserID) float64 {
	su, sv := r.ring.Owner(u), r.ring.Owner(v)
	if su != sv {
		r.mCrossSim.Inc()
		return 0
	}
	return r.shards[su].Similarity(u, v)
}

// PropagateScores partitions the seed set by owner, runs the per-shard
// propagations concurrently, and merges the score maps. Each shard's
// similarity graph only carries edges between its own users (a profile
// absent from the shard can never clear τ), so the per-shard result sets
// are disjoint and the merge is a union; summation is used anyway so a
// future overlay with cross-shard edges stays correct.
func (r *Router) PropagateScores(seeds []repro.UserID) map[repro.UserID]float64 {
	if len(r.shards) == 1 {
		return r.shards[0].PropagateScores(seeds)
	}
	bySeed := make([][]repro.UserID, len(r.shards))
	for _, s := range seeds {
		if int(s) >= r.ds.NumUsers() {
			continue // out-of-range seeds are dropped at the engine boundary anyway
		}
		o := r.ring.Owner(s)
		bySeed[o] = append(bySeed[o], s)
	}
	results := make([]map[repro.UserID]float64, len(r.shards))
	var wg sync.WaitGroup
	fanned := 0
	for i, part := range bySeed {
		if len(part) == 0 {
			continue
		}
		fanned++
		wg.Add(1)
		go func(i int, part []repro.UserID) {
			defer wg.Done()
			results[i] = r.shards[i].PropagateScores(part)
		}(i, part)
	}
	wg.Wait()
	if fanned > 1 {
		r.mPropFanouts.Inc()
	}
	out := make(map[repro.UserID]float64)
	for _, res := range results {
		for u, p := range res {
			out[u] += p
		}
	}
	return out
}

// RefreshGraph runs one maintenance pass on every shard concurrently.
func (r *Router) RefreshGraph(strategy repro.UpdateStrategy) {
	r.RefreshGraphStats(strategy)
}

// RefreshGraphStats is RefreshGraph returning the per-shard cost splits,
// indexed by shard. The passes run concurrently: each shard's write
// stall overlaps the others', so the fleet-wide stall is the max, not
// the sum, of the per-shard stalls.
func (r *Router) RefreshGraphStats(strategy repro.UpdateStrategy) []repro.RefreshStats {
	stats := make([]repro.RefreshStats, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i] = r.shards[i].RefreshGraphStats(strategy)
		}(i)
	}
	wg.Wait()
	return stats
}

// ObservedActions merges every shard's observed log into one slice,
// ordered by (time, user, tweet) so the result is deterministic: the
// per-shard logs preserve arrival order but the cross-shard interleaving
// is not recorded (it never influences state — an action only touches
// its owner). Each call returns a fresh copy.
func (r *Router) ObservedActions() []repro.Action {
	var out []repro.Action
	for _, e := range r.shards {
		out = append(out, e.ObservedActions()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Tweet < out[j].Tweet
	})
	return out
}

// ShardLoads returns each shard's applied-observe count, for imbalance
// monitoring (max/mean over this slice is the skew the zipf routing test
// bounds).
func (r *Router) ShardLoads() []uint64 {
	loads := make([]uint64, len(r.shards))
	for i, c := range r.mShardObserves {
		loads[i] = c.Value()
	}
	return loads
}

// CrossShardObserves returns the cumulative count of observes whose
// tweet already had sharers on a different shard — the lost-similarity
// signal counter.
func (r *Router) CrossShardObserves() uint64 { return r.mCrossObserves.Value() }

// Metrics snapshots the whole fleet into one view: the router/* series
// plus every shard engine's registry re-rooted under shard/<i>/. One
// registry per shard stays the source of truth (engines never share
// instruments, so shard hot paths never contend); the rollup happens at
// snapshot time, where contention is irrelevant.
func (r *Router) Metrics() metrics.Snapshot {
	out := r.reg.Snapshot()
	if out.Counters == nil {
		out.Counters = make(map[string]uint64)
	}
	if out.Gauges == nil {
		out.Gauges = make(map[string]int64)
	}
	if out.Histograms == nil {
		out.Histograms = make(map[string]metrics.HistogramSnapshot)
	}
	for i, e := range r.shards {
		prefix := fmt.Sprintf("shard/%d/", i)
		s := e.Metrics()
		for name, v := range s.Counters {
			out.Counters[prefix+name] = v
		}
		for name, v := range s.Gauges {
			out.Gauges[prefix+name] = v
		}
		for name, v := range s.Histograms {
			out.Histograms[prefix+name] = v
		}
	}
	return out
}

// MetricsRegistry exposes the router-level registry (the shard/<i>/
// rollup exists only in Metrics snapshots; per-shard live registries are
// reachable via Shard(i).MetricsRegistry()).
func (r *Router) MetricsRegistry() *metrics.Registry { return r.reg }
