package wgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/xrand"
)

// spliceReference applies runs the slow way: materialize the edge list,
// drop the spliced sources' old edges, append the runs, and rebuild with
// NewFromEdges. SpliceOuts must be indistinguishable from this.
func spliceReference(g *Graph, runs []OutRun) *Graph {
	replaced := make(map[ids.UserID]bool, len(runs))
	for _, r := range runs {
		replaced[r.From] = true
	}
	var edges []Edge
	for _, e := range g.Edges() {
		if !replaced[e.From] {
			edges = append(edges, e)
		}
	}
	for _, r := range runs {
		for i, to := range r.To {
			edges = append(edges, Edge{From: r.From, To: to, Weight: r.W[i]})
		}
	}
	return NewFromEdges(g.NumNodes(), edges)
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		at, aw := a.Out(ids.UserID(u))
		bt, bw := b.Out(ids.UserID(u))
		if len(at) != len(bt) {
			return false
		}
		for i := range at {
			if at[i] != bt[i] || aw[i] != bw[i] {
				return false
			}
		}
		af, aiw := a.In(ids.UserID(u))
		bf, biw := b.In(ids.UserID(u))
		if len(af) != len(bf) {
			return false
		}
		for i := range af {
			if af[i] != bf[i] || aiw[i] != biw[i] {
				return false
			}
		}
	}
	return true
}

func randomWeighted(n, e int, rng *xrand.RNG) *Graph {
	b := NewBuilder(n, e)
	for i := 0; i < e; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(ids.UserID(u), ids.UserID(v), float32(rng.Float64()))
	}
	return b.Build()
}

// randomRuns picks a random subset of sources and gives each a random
// replacement run (possibly empty = delete all out-edges).
func randomRuns(n int, rng *xrand.RNG) []OutRun {
	var runs []OutRun
	for u := 0; u < n; u++ {
		if !rng.Bool(0.3) {
			continue
		}
		deg := rng.Intn(n)
		run := OutRun{From: ids.UserID(u)}
		seen := make(map[ids.UserID]bool)
		for i := 0; i < deg; i++ {
			v := ids.UserID(rng.Intn(n))
			if int(v) == u || seen[v] {
				continue
			}
			seen[v] = true
			run.To = append(run.To, v)
			run.W = append(run.W, float32(rng.Float64()))
		}
		SortRun(run)
		runs = append(runs, run)
	}
	return runs
}

// Property: SpliceOuts ≡ drop-and-rebuild via NewFromEdges, including
// the reverse CSR (in-lists sorted by source, same as NewFromEdges).
func TestSpliceOutsMatchesRebuild(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		g := randomWeighted(n, rng.Intn(4*n), rng)
		runs := randomRuns(n, rng)
		return graphsEqual(SpliceOuts(g, runs), spliceReference(g, runs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpliceOutsNoRuns(t *testing.T) {
	g := triangle()
	if !graphsEqual(SpliceOuts(g, nil), g) {
		t.Error("empty splice changed the graph")
	}
}

func TestSpliceOutsDeleteAndGrow(t *testing.T) {
	g := triangle() // 0→1, 1→2, 2→0
	ng := SpliceOuts(g, []OutRun{
		{From: 0, To: []ids.UserID{1, 2}, W: []float32{0.9, 0.8}}, // grow
		{From: 1}, // delete all of 1's out-edges
	})
	if ng.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", ng.NumEdges())
	}
	if w, ok := ng.Weight(0, 2); !ok || w != 0.8 {
		t.Errorf("Weight(0,2) = %v %v", w, ok)
	}
	if _, ok := ng.Weight(1, 2); ok {
		t.Error("deleted edge 1→2 survived")
	}
	if w, ok := ng.Weight(2, 0); !ok || w != 0.75 {
		t.Errorf("untouched edge 2→0 = %v %v", w, ok)
	}
	// Original untouched (immutability).
	if g.NumEdges() != 3 || g.OutDegree(1) != 1 {
		t.Error("SpliceOuts mutated its input")
	}
}
