package experiments

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/stats"
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := gen.DefaultConfig(500, 19)
	cfg.TweetsPerUser = 8
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := eval.DefaultOptions()
	opts.SamplePerClass = 15
	opts.KMin, opts.KMax, opts.KStep = 10, 30, 10
	return NewSuite(ds, opts)
}

func TestSection3Renders(t *testing.T) {
	s := testSuite(t)
	if out := s.Table1(8); !strings.Contains(out, "# nodes") {
		t.Errorf("Table1 output: %q", out)
	}
	if out := s.Figure1(8); !strings.Contains(out, "dist") {
		t.Errorf("Figure1 output: %q", out)
	}
	if out := s.Figure2(); !strings.Contains(out, "2-5") {
		t.Errorf("Figure2 output: %q", out)
	}
	if out := s.Figure3(); !strings.Contains(out, "never-retweet") {
		t.Errorf("Figure3 output: %q", out)
	}
	if out := s.Figure4(); !strings.Contains(out, "dead within 1h") {
		t.Errorf("Figure4 output: %q", out)
	}
	hc := stats.HomophilyConfig{SampleSize: 20, MinRetweets: 2, MaxDistance: 6, Seed: 1}
	out, err := s.Table2(hc)
	if err != nil || !strings.Contains(out, "impossible") {
		t.Errorf("Table2: %v %q", err, out)
	}
	out, err = s.Table3(hc)
	if err != nil || !strings.Contains(out, "Rank") {
		t.Errorf("Table3: %v %q", err, out)
	}
}

func TestSimGraphStructureRenders(t *testing.T) {
	s := testSuite(t)
	out, err := s.Table4(8)
	if err != nil || !strings.Contains(out, "Nb of edges") {
		t.Errorf("Table4: %v %q", err, out)
	}
	out, err = s.Figure5(8)
	if err != nil || !strings.Contains(out, "SimGraph") {
		t.Errorf("Figure5: %v %q", err, out)
	}
}

func TestEvaluationFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay is slow")
	}
	s := testSuite(t)
	if err := s.EnsureRuns(nil); err != nil {
		t.Fatal(err)
	}
	figures := []struct {
		name string
		run  func() (string, error)
		want string
	}{
		{"fig7", s.Figure7, "recommendations per day"},
		{"fig8", s.Figure8, "hits"},
		{"fig9", s.Figure9, "low-activity"},
		{"fig10", s.Figure10, "moderate"},
		{"fig11", s.Figure11, "intensive"},
		{"fig12", s.Figure12, "popularity"},
		{"fig13", s.Figure13, "common"},
		{"fig14", s.Figure14, "F1"},
		{"table5", s.Table5, "init"},
		{"fig15", s.Figure15, "advance"},
	}
	for _, f := range figures {
		out, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if !strings.Contains(out, f.want) {
			t.Errorf("%s output missing %q:\n%s", f.name, f.want, out)
		}
		// Every evaluated method appears in each figure except fig13,
		// which omits SimGraph by construction.
		for _, m := range MethodNames {
			if f.name == "fig13" && m == "SimGraph" {
				continue
			}
			if !strings.Contains(out, m) {
				t.Errorf("%s output missing method %s", f.name, m)
			}
		}
	}
	// Cached metrics are reachable.
	if s.Metrics("SimGraph") == nil {
		t.Error("metrics cache empty")
	}
}
