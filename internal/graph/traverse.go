package graph

import (
	"math"

	"repro/internal/ids"
)

// Unreachable marks nodes with no path from the BFS source.
const Unreachable = int32(-1)

// BFS computes distances (in hops, following out-edges) from src to every
// node. The dist slice is reused if it has the right length, otherwise a
// new one is allocated; it is returned either way.
func (g *Graph) BFS(src ids.UserID, dist []int32) []int32 {
	if len(dist) != g.n {
		dist = make([]int32, g.n)
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]ids.UserID, 0, 1024)
	queue = append(queue, src)
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Out(u) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BoundedBFS is reusable scratch for repeated bounded explorations from
// different sources over graphs of the same node space. The visited set
// is an epoch-stamped array — bumping the epoch invalidates it in O(1),
// so a worker that explores thousands of sources (SimGraph construction)
// never clears or reallocates between calls. The zero value is ready to
// use. Not safe for concurrent use; give each worker its own.
type BoundedBFS struct {
	epoch  uint32
	seen   []uint32
	nodes  []ids.UserID
	dist   []int8
	expand []bool // ExploreFiltered only: whether nodes[i] gets traversed
}

// Explore returns the nodes at distance 1..maxHops from src (following
// out-edges), excluding src itself, along with each node's distance.
// Nodes appear in BFS order, so distances are non-decreasing. The
// returned slices alias the scratch and are valid until the next call.
func (b *BoundedBFS) Explore(g *Graph, src ids.UserID, maxHops int) (nodes []ids.UserID, dist []int8) {
	if len(b.seen) < g.n {
		b.seen = make([]uint32, g.n)
		b.epoch = 0
	}
	b.epoch++
	if b.epoch == 0 { // wrapped after 2^32 calls: clear and restart
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
	// The queue doubles as the result: slot 0 holds src and is trimmed
	// from the returned view.
	b.nodes = append(b.nodes[:0], src)
	b.dist = append(b.dist[:0], 0)
	b.seen[src] = b.epoch
	for head := 0; head < len(b.nodes); head++ {
		d := b.dist[head]
		if int(d) >= maxHops {
			break // BFS order: every later node is at least this far
		}
		for _, v := range g.Out(b.nodes[head]) {
			if b.seen[v] == b.epoch {
				continue
			}
			b.seen[v] = b.epoch
			b.nodes = append(b.nodes, v)
			b.dist = append(b.dist, d+1)
		}
	}
	return b.nodes[1:], b.dist[1:]
}

// Verdict is ExploreFiltered's per-node decision. Keeping and expanding
// are independent: a node can stay in the result without its out-edges
// being traversed (Keep), which lets a caller retain direct neighbors as
// candidates while refusing to discover anything through them.
type Verdict uint8

const (
	// Drop removes the node from the result and never expands it.
	Drop Verdict = iota
	// Keep retains the node in the result but does not expand it.
	Keep
	// KeepExpand retains the node and traverses its out-edges.
	KeepExpand
)

// ExploreFiltered is Explore with a node predicate: each newly-discovered
// node gets a Verdict deciding whether it appears in the result and
// whether the BFS traverses through it, so whole subtrees reachable only
// through rejected nodes are skipped. src itself is always expanded. The
// predicate is called once per newly-discovered node, in BFS order, with
// the node's hop distance. This is the community-restricted exploration
// the cluster pruner uses: under homophily, frontier nodes with low
// cluster overlap lead to low-overlap candidates, so cutting them at the
// frontier saves the expansion, the scoring, and the per-candidate
// filtering downstream — while direct neighbors (explicit follow signal)
// can still be kept as candidates without being expanded.
func (b *BoundedBFS) ExploreFiltered(g *Graph, src ids.UserID, maxHops int, verdict func(v ids.UserID, hop int8) Verdict) (nodes []ids.UserID, dist []int8) {
	if len(b.seen) < g.n {
		b.seen = make([]uint32, g.n)
		b.epoch = 0
	}
	b.epoch++
	if b.epoch == 0 { // wrapped after 2^32 calls: clear and restart
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
	b.nodes = append(b.nodes[:0], src)
	b.dist = append(b.dist[:0], 0)
	b.expand = append(b.expand[:0], true)
	b.seen[src] = b.epoch
	for head := 0; head < len(b.nodes); head++ {
		d := b.dist[head]
		if int(d) >= maxHops {
			break
		}
		if !b.expand[head] {
			continue
		}
		for _, v := range g.Out(b.nodes[head]) {
			if b.seen[v] == b.epoch {
				continue
			}
			b.seen[v] = b.epoch
			ver := verdict(v, d+1)
			if ver == Drop {
				continue
			}
			b.nodes = append(b.nodes, v)
			b.dist = append(b.dist, d+1)
			b.expand = append(b.expand, ver == KeepExpand)
		}
	}
	return b.nodes[1:], b.dist[1:]
}

// BFSBounded is the one-off form of BoundedBFS.Explore, kept for callers
// that explore a single source. Intended for the 2-hop neighbourhood
// exploration N2(u); repeated callers should hold a BoundedBFS instead.
func (g *Graph) BFSBounded(src ids.UserID, maxHops int) (nodes []ids.UserID, dist []int8) {
	var b BoundedBFS
	return b.Explore(g, src, maxHops)
}

// Neighborhood2 returns the distinct nodes reachable from src in at most
// two hops following out-edges, excluding src. This is the paper's N2(u).
func (g *Graph) Neighborhood2(src ids.UserID) []ids.UserID {
	nodes, _ := g.BFSBounded(src, 2)
	return nodes
}

// PathLengthDistribution BFS-samples shortest-path lengths from sources
// chosen by the caller and histograms them. hist[d] counts ordered pairs
// (s, v) with dist(s, v) == d for d >= 1; unreachable pairs are counted in
// the returned impossible total.
func (g *Graph) PathLengthDistribution(sources []ids.UserID) (hist []int64, impossible int64) {
	dist := make([]int32, g.n)
	for _, s := range sources {
		dist = g.BFS(s, dist)
		for v, d := range dist {
			if ids.UserID(v) == s {
				continue
			}
			switch {
			case d == Unreachable:
				impossible++
			default:
				for int(d) >= len(hist) {
					hist = append(hist, 0)
				}
				hist[d]++
			}
		}
	}
	return hist, impossible
}

// AveragePathLength estimates the mean shortest-path length over reachable
// pairs using the given BFS sources.
func (g *Graph) AveragePathLength(sources []ids.UserID) float64 {
	hist, _ := g.PathLengthDistribution(sources)
	var sum, cnt float64
	for d, c := range hist {
		sum += float64(d) * float64(c)
		cnt += float64(c)
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / cnt
}

// EstimateDiameter lower-bounds the diameter with the double-sweep
// heuristic repeated from several starting points: BFS from a start, then
// BFS again from the farthest node found. It returns the largest finite
// eccentricity observed.
func (g *Graph) EstimateDiameter(starts []ids.UserID) int {
	best := 0
	dist := make([]int32, g.n)
	for _, s := range starts {
		for sweep := 0; sweep < 2; sweep++ {
			dist = g.BFS(s, dist)
			far, fd := s, int32(0)
			for v, d := range dist {
				if d > fd {
					fd, far = d, ids.UserID(v)
				}
			}
			if int(fd) > best {
				best = int(fd)
			}
			s = far
		}
	}
	return best
}

// LargestWeakComponent returns the node set of the largest weakly
// connected component (treating edges as undirected).
func (g *Graph) LargestWeakComponent() []ids.UserID {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []ids.UserID
	bestID, bestSize := int32(-1), 0
	sizes := []int{}
	next := int32(0)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := next
		next++
		size := 0
		queue = queue[:0]
		queue = append(queue, ids.UserID(s))
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for _, v := range g.Out(u) {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
			for _, v := range g.In(u) {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
		if size > bestSize {
			bestSize, bestID = size, id
		}
	}
	out := make([]ids.UserID, 0, bestSize)
	for v := 0; v < g.n; v++ {
		if comp[v] == bestID {
			out = append(out, ids.UserID(v))
		}
	}
	return out
}

// Distance returns the shortest-path hop count from u to v following
// out-edges, or -1 if unreachable. It runs a targeted BFS that stops as
// soon as v is settled.
func (g *Graph) Distance(u, v ids.UserID) int {
	if u == v {
		return 0
	}
	seen := map[ids.UserID]int32{u: 0}
	queue := []ids.UserID{u}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		d := seen[cur]
		for _, w := range g.Out(cur) {
			if _, ok := seen[w]; ok {
				continue
			}
			if w == v {
				return int(d + 1)
			}
			seen[w] = d + 1
			queue = append(queue, w)
		}
	}
	return -1
}
