package durable

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crcio"
)

// Manifest file format:
//
//	magic "CKPTMF01" | version u8 | payloadLen u32 | payload | crc32c u32
//
// payload:
//
//	seq u64 | walHWM u64 | observedNewest i64 | trainLen i64
//	| numFiles u16 | files: (role u8 | nameLen u16 | name | size u64 | crc u32)*
//
// Little-endian. The CRC covers the payload only (magic and version are
// validated structurally), and the manifest is tiny, so it is encoded and
// decoded in memory. A checkpoint is valid iff its manifest decodes and
// its files check out — the manifest is written last, atomically, which
// is what makes the whole checkpoint atomic.

const (
	manifestMagic   = "CKPTMF01"
	manifestVersion = 1
	// maxManifestPayload bounds a declared payload length during decode;
	// a real manifest is a few hundred bytes.
	maxManifestPayload = 1 << 20
)

// FileRole tags a checkpoint file's content.
type FileRole uint8

// Checkpoint file roles.
const (
	FileDataset FileRole = 1
	FileGraph   FileRole = 2
	FileActions FileRole = 3
)

// ManifestFile describes one file a checkpoint comprises.
type ManifestFile struct {
	Role FileRole
	// Name is the file's name within the checkpoint directory (no path
	// separators).
	Name string
	// Size is the file's exact byte length.
	Size int64
	// CRC is the CRC32C of the whole file.
	CRC uint32
}

// Manifest is the authoritative description of one checkpoint: which
// files it comprises, the WAL position it covers, and the engine clock
// state recovery must restore.
type Manifest struct {
	// Seq is the checkpoint sequence number; higher is newer.
	Seq uint64
	// WALHWM is the first WAL index NOT covered by this checkpoint:
	// recovery replays the WAL from here.
	WALHWM uint64
	// ObservedNewest is the engine's newest observed action timestamp at
	// checkpoint time (anchors the freshness horizon after recovery).
	ObservedNewest int64
	// TrainLen is the length of the training prefix of the dataset's
	// action log the engine was built from; -1 means the whole log.
	TrainLen int64
	// Files lists the checkpoint's data files.
	Files []ManifestFile
}

// File returns the manifest entry with the given role, or nil.
func (m *Manifest) File(role FileRole) *ManifestFile {
	for i := range m.Files {
		if m.Files[i].Role == role {
			return &m.Files[i]
		}
	}
	return nil
}

// EncodeManifest renders m to its binary form.
func EncodeManifest(m *Manifest) []byte {
	le := binary.LittleEndian
	payload := make([]byte, 0, 64+32*len(m.Files))
	payload = le.AppendUint64(payload, m.Seq)
	payload = le.AppendUint64(payload, m.WALHWM)
	payload = le.AppendUint64(payload, uint64(m.ObservedNewest))
	payload = le.AppendUint64(payload, uint64(m.TrainLen))
	payload = le.AppendUint16(payload, uint16(len(m.Files)))
	for _, f := range m.Files {
		payload = append(payload, byte(f.Role))
		payload = le.AppendUint16(payload, uint16(len(f.Name)))
		payload = append(payload, f.Name...)
		payload = le.AppendUint64(payload, uint64(f.Size))
		payload = le.AppendUint32(payload, f.CRC)
	}
	out := make([]byte, 0, len(manifestMagic)+1+4+len(payload)+4)
	out = append(out, manifestMagic...)
	out = append(out, manifestVersion)
	out = le.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = le.AppendUint32(out, crcio.Checksum(payload))
	return out
}

// DecodeManifest parses a manifest image. Arbitrary input never panics
// and never allocates beyond the (bounded) declared payload: it returns
// an error or a fully validated manifest. Trailing bytes after the
// checksum are rejected.
func DecodeManifest(data []byte) (*Manifest, error) {
	le := binary.LittleEndian
	hdr := len(manifestMagic) + 1 + 4
	if len(data) < hdr {
		return nil, fmt.Errorf("durable: manifest too short (%d bytes)", len(data))
	}
	if string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("durable: bad manifest magic %q", data[:len(manifestMagic)])
	}
	if v := data[len(manifestMagic)]; v != manifestVersion {
		return nil, fmt.Errorf("durable: unsupported manifest version %d", v)
	}
	plen := int64(le.Uint32(data[len(manifestMagic)+1 : hdr]))
	if plen > maxManifestPayload {
		return nil, fmt.Errorf("durable: manifest payload length %d exceeds bound", plen)
	}
	if int64(len(data)) != int64(hdr)+plen+4 {
		return nil, fmt.Errorf("durable: manifest length %d does not match declared payload %d", len(data), plen)
	}
	payload := data[hdr : int64(hdr)+plen]
	if crcio.Checksum(payload) != le.Uint32(data[int64(hdr)+plen:]) {
		return nil, fmt.Errorf("durable: manifest checksum mismatch")
	}
	if len(payload) < 8+8+8+8+2 {
		return nil, fmt.Errorf("durable: manifest payload too short (%d bytes)", len(payload))
	}
	m := &Manifest{
		Seq:            le.Uint64(payload[0:8]),
		WALHWM:         le.Uint64(payload[8:16]),
		ObservedNewest: int64(le.Uint64(payload[16:24])),
		TrainLen:       int64(le.Uint64(payload[24:32])),
	}
	numFiles := int(le.Uint16(payload[32:34]))
	rest := payload[34:]
	for i := 0; i < numFiles; i++ {
		if len(rest) < 3 {
			return nil, fmt.Errorf("durable: manifest file %d truncated", i)
		}
		role := FileRole(rest[0])
		nameLen := int(le.Uint16(rest[1:3]))
		rest = rest[3:]
		if len(rest) < nameLen+12 {
			return nil, fmt.Errorf("durable: manifest file %d truncated", i)
		}
		name := string(rest[:nameLen])
		if name == "" || !validFileName(name) {
			return nil, fmt.Errorf("durable: manifest file %d has invalid name %q", i, name)
		}
		rest = rest[nameLen:]
		m.Files = append(m.Files, ManifestFile{
			Role: role,
			Name: name,
			Size: int64(le.Uint64(rest[0:8])),
			CRC:  le.Uint32(rest[8:12]),
		})
		rest = rest[12:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("durable: %d bytes of trailing garbage in manifest payload", len(rest))
	}
	return m, nil
}

// validFileName rejects names that could escape the checkpoint
// directory: manifests name sibling files, nothing else.
func validFileName(name string) bool {
	for i := 0; i < len(name); i++ {
		switch name[i] {
		case '/', '\\', 0:
			return false
		}
	}
	return name != "." && name != ".."
}
