// Package crcio provides the CRC32C (Castagnoli) checksum plumbing shared
// by every on-disk format in the repository: the dataset and similarity
// graph codecs' file trailers and the durability subsystem's WAL records
// and checkpoint manifests.
//
// Castagnoli is the right polynomial for storage integrity: it detects
// all burst errors up to 32 bits, and amd64/arm64 compute it with a
// dedicated instruction, so checksumming rides along with buffered IO at
// memory bandwidth.
package crcio

import (
	"hash/crc32"
	"io"
)

// Table is the Castagnoli polynomial table used by every checksum in the
// repository's file formats.
var Table = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, Table) }

// Update folds data into a running CRC32C.
func Update(sum uint32, data []byte) uint32 { return crc32.Update(sum, Table, data) }

// Writer wraps an io.Writer and maintains the running CRC32C of every
// byte written through it, so codecs can stream a file and emit the
// checksum as a trailer without buffering the payload.
type Writer struct {
	W   io.Writer
	Sum uint32
}

// NewWriter returns a checksumming wrapper around w.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

// Write forwards to the wrapped writer and folds the written prefix into
// the running checksum.
func (cw *Writer) Write(p []byte) (int, error) {
	n, err := cw.W.Write(p)
	cw.Sum = crc32.Update(cw.Sum, Table, p[:n])
	return n, err
}

// Reader wraps an io.Reader and maintains the running CRC32C of every
// byte read through it, so codecs can verify a file trailer in the same
// single pass that decodes the payload.
type Reader struct {
	R   io.Reader
	Sum uint32
}

// NewReader returns a checksumming wrapper around r.
func NewReader(r io.Reader) *Reader { return &Reader{R: r} }

// Read forwards to the wrapped reader and folds the returned bytes into
// the running checksum.
func (cr *Reader) Read(p []byte) (int, error) {
	n, err := cr.R.Read(p)
	cr.Sum = crc32.Update(cr.Sum, Table, p[:n])
	return n, err
}
