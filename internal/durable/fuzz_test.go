package durable

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/crcio"
	"repro/internal/dataset"
)

// validSegmentBytes builds a well-formed segment image for seeding.
func validSegmentBytes(first uint64, actions []dataset.Action) []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	le := binary.LittleEndian
	var b [8]byte
	le.PutUint64(b[:], first)
	buf.Write(b[:])
	for _, a := range actions {
		var p [actionPayloadSize]byte
		p[0] = recordAction
		le.PutUint32(p[1:5], uint32(a.User))
		le.PutUint32(p[5:9], uint32(a.Tweet))
		le.PutUint64(p[9:17], uint64(a.Time))
		le.PutUint32(b[:4], actionPayloadSize)
		le.PutUint32(b[4:8], crcio.Checksum(p[:]))
		buf.Write(b[:8])
		buf.Write(p[:])
	}
	return buf.Bytes()
}

// FuzzWALDecode pins the WAL reader's contract on arbitrary bytes: never
// panic, never allocate unbounded memory, only return an error or a
// valid record prefix whose bookkeeping is internally consistent.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	good := validSegmentBytes(3, testActions(4))
	f.Add(good)
	f.Add(good[:len(good)-5])            // torn tail
	f.Add(append(good, 0xFF, 0xFF))      // garbage tail
	f.Add(validSegmentBytes(0, nil))     // empty segment
	huge := append([]byte(nil), good...) // absurd declared record size
	binary.LittleEndian.PutUint32(huge[segHeaderSize:], 1<<31)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		records := 0
		st, err := ScanSegment(bytes.NewReader(data), func(idx uint64, a dataset.Action) error {
			records++
			return nil
		})
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if st.Records != records {
			t.Fatalf("stats say %d records, callback saw %d", st.Records, records)
		}
		if st.GoodBytes < int64(segHeaderSize) || st.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d out of [header, len] for %d input bytes", st.GoodBytes, len(data))
		}
		if want := int64(segHeaderSize) + int64(st.Records)*int64(recHeaderSize+actionPayloadSize); st.GoodBytes != want {
			t.Fatalf("GoodBytes %d inconsistent with %d records", st.GoodBytes, st.Records)
		}
		if !st.Torn && st.TornBytes != 0 {
			t.Fatalf("clean scan reports %d torn bytes", st.TornBytes)
		}
		if st.Torn && st.GoodBytes+st.TornBytes > int64(len(data)) {
			t.Fatalf("salvaged %d + torn %d bytes exceed %d input bytes", st.GoodBytes, st.TornBytes, len(data))
		}
	})
}

// FuzzTailDecodeDifferential pins the replication tail decoder to the
// recovery scanner on arbitrary bytes: TailDecoder.Feed (the follower's
// segment-fetch framing) must deliver exactly the records ScanSegment
// delivers, stop at exactly the same byte offset, and reject every
// corruption ScanSegment rejects — whether the bytes arrive in one
// chunk or dribble in over many rounds with the unconsumed tail
// re-fed, as the fetch loop does.
func FuzzTailDecodeDifferential(f *testing.F) {
	f.Add([]byte{}, 3)
	good := validSegmentBytes(3, testActions(4))
	f.Add(good, 1)
	f.Add(good[:len(good)-5], 7)        // torn (incomplete) tail
	f.Add(append(good, 0xFF, 0xFF), 2)  // garbage tail
	f.Add(validSegmentBytes(0, nil), 5) // empty segment
	crcBad := append([]byte(nil), good...)
	crcBad[len(crcBad)-1] ^= 0xFF // complete frame, bad checksum
	f.Add(crcBad, 4)
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[segHeaderSize:], 1<<31)
	f.Add(huge, 3) // absurd declared record size
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		var scanRecs []dataset.Action
		st, scanErr := ScanSegment(bytes.NewReader(data), func(idx uint64, a dataset.Action) error {
			scanRecs = append(scanRecs, a)
			return nil
		})
		if scanErr != nil {
			// Header rejected (short or bad magic). The decoder must not
			// consume anything either: a short header waits for more
			// bytes, a bad magic errors.
			dec := NewTailDecoder(0)
			n, err := dec.Feed(data, nil)
			if n != 0 {
				t.Fatalf("scanner rejected the header but decoder consumed %d bytes", n)
			}
			if len(data) >= segHeaderSize && err == nil && string(data[:len(segMagic)]) != segMagic {
				t.Fatal("decoder accepted a header the scanner rejected")
			}
			return
		}
		first := st.FirstIndex

		// Whole-buffer feed.
		var decRecs []dataset.Action
		var decIdxs []uint64
		dec := NewTailDecoder(first)
		consumed, decErr := dec.Feed(data, func(idx uint64, a dataset.Action) error {
			decRecs = append(decRecs, a)
			decIdxs = append(decIdxs, idx)
			return nil
		})

		if len(decRecs) != len(scanRecs) {
			t.Fatalf("decoder delivered %d records, scanner %d", len(decRecs), len(scanRecs))
		}
		for i := range decRecs {
			if decRecs[i] != scanRecs[i] {
				t.Fatalf("record %d: decoder %+v, scanner %+v", i, decRecs[i], scanRecs[i])
			}
			if decIdxs[i] != first+uint64(i) {
				t.Fatalf("record %d carried index %d, want %d", i, decIdxs[i], first+uint64(i))
			}
		}
		if dec.Offset() != st.GoodBytes {
			t.Fatalf("decoder stopped at offset %d, scanner GoodBytes %d", dec.Offset(), st.GoodBytes)
		}
		if int64(consumed) != st.GoodBytes {
			t.Fatalf("consumed %d bytes, scanner salvaged %d", consumed, st.GoodBytes)
		}
		if decErr != nil && !st.Torn {
			t.Fatalf("decoder rejected (%v) what the scanner scanned cleanly", decErr)
		}
		if !st.Torn && int64(consumed) != int64(len(data)) {
			t.Fatalf("clean input: consumed %d of %d bytes", consumed, len(data))
		}

		// Chunked feed with unconsumed-tail re-feeding (the fetch loop's
		// exact access pattern) must land in the identical state.
		if chunk <= 0 {
			chunk = 1
		}
		dec2 := NewTailDecoder(first)
		var recs2 int
		var err2 error
		var buf []byte
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			buf = append(buf, data[off:end]...)
			var n int
			n, err2 = dec2.Feed(buf, func(idx uint64, a dataset.Action) error {
				if a != scanRecs[recs2] {
					t.Fatalf("chunked record %d diverged", recs2)
				}
				recs2++
				return nil
			})
			buf = buf[n:]
			if err2 != nil {
				break
			}
		}
		if recs2 != len(scanRecs) {
			t.Fatalf("chunked feed delivered %d records, whole-buffer %d", recs2, len(scanRecs))
		}
		if dec2.Offset() != dec.Offset() {
			t.Fatalf("chunked feed stopped at %d, whole-buffer at %d", dec2.Offset(), dec.Offset())
		}
		if (err2 == nil) != (decErr == nil) {
			t.Fatalf("chunked feed error %v, whole-buffer %v", err2, decErr)
		}
	})
}

// FuzzManifestDecode pins the manifest decoder's contract on arbitrary
// bytes: never panic, never allocate unbounded memory, and any input it
// accepts must re-encode to a byte-identical image (the decode is a
// bijection onto valid manifests).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	f.Add(EncodeManifest(&Manifest{Seq: 1, WALHWM: 9, ObservedNewest: 100, TrainLen: -1}))
	f.Add(EncodeManifest(&Manifest{
		Seq:   2,
		Files: []ManifestFile{{Role: FileDataset, Name: "d", Size: 10, CRC: 3}, {Role: FileGraph, Name: "g", Size: 4, CRC: 5}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re := EncodeManifest(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted manifest is not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
