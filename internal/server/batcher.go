package server

import (
	"errors"
	"sync"

	"repro"
	"repro/internal/metrics"
)

// errObserveOverflow rejects a write when the coalescing queue is at
// its bound; the HTTP layer maps it to 503 + Retry-After. Backpressure
// at the queue beats unbounded memory: every queued waiter pins a
// goroutine and an action until some future flush drains it, so under
// an open-loop storm the queue — not the heap — must be the limit.
var errObserveOverflow = errors.New("server: observe queue full")

// pendingObserve is one waiter in the coalescing queue; done carries
// its ObserveBatch slot error back to the HTTP handler goroutine.
type pendingObserve struct {
	action repro.Action
	done   chan error
}

// batcher coalesces concurrent single-action writes into ObserveBatch
// calls. The shape is a classic group commit: at most one flusher is in
// the backend at a time, every writer that arrives while a flush is in
// flight queues behind it, and the next flush takes the whole queue —
// so under load, batch size self-tunes to the arrival rate and N
// writers pay one exclusive-lock entry and one fsync between them,
// while an idle server still flushes every lone write immediately (no
// latency floor from a timer).
type batcher struct {
	backend    Backend
	maxBatch   int
	maxPending int

	mu       sync.Mutex
	pending  []pendingObserve
	flushing bool

	mFlushes   *metrics.Counter   // server/batch/flushes
	mCoalesced *metrics.Counter   // server/batch/coalesced (actions that shared a flush)
	mOverflow  *metrics.Counter   // server/batch/overflow (writes shed at the queue bound)
	mSize      *metrics.Histogram // server/batch/size
}

func newBatcher(b Backend, maxBatch, maxPending int, reg *metrics.Registry) *batcher {
	if maxBatch <= 0 {
		maxBatch = 512
	}
	if maxPending <= 0 {
		maxPending = 4096
	}
	return &batcher{
		backend:    b,
		maxBatch:   maxBatch,
		maxPending: maxPending,
		mFlushes:   reg.Counter("server/batch/flushes"),
		mCoalesced: reg.Counter("server/batch/coalesced"),
		mOverflow:  reg.Counter("server/batch/overflow"),
		mSize:      reg.Histogram("server/batch/size"),
	}
}

// Observe submits one action and blocks until its batch commits,
// returning the action's own slot error (the engine batch contract:
// nil, a degraded-durability wrap of repro.ErrWALRecordLogged, or a
// rejection).
func (b *batcher) Observe(a repro.Action) error {
	w := pendingObserve{action: a, done: make(chan error, 1)}
	b.mu.Lock()
	if len(b.pending) >= b.maxPending {
		b.mu.Unlock()
		b.mOverflow.Inc()
		return errObserveOverflow
	}
	b.pending = append(b.pending, w)
	if b.flushing {
		// A flush is in the backend; it (or its successor) will drain us.
		b.mu.Unlock()
		return <-w.done
	}
	b.flushing = true
	b.mu.Unlock()
	b.flushOnce()
	return <-w.done
}

// flushOnce drains one maxBatch slice of the queue on the calling
// goroutine — the "leader", the writer that found the queue idle, whose
// own action is always in the slice it flushes — and, if followers
// queued behind the flush, hands the flusher role to a fresh goroutine
// instead of looping: the leader's HTTP response must not wait out
// other people's batches. At most one flusher exists at any moment
// (flushing stays true across the handoff), which is what makes the
// batch ride a single WAL group commit.
func (b *batcher) flushOnce() {
	b.mu.Lock()
	if len(b.pending) == 0 {
		b.flushing = false
		b.mu.Unlock()
		return
	}
	batch := b.pending
	if len(batch) > b.maxBatch {
		batch = batch[:b.maxBatch]
		b.pending = append([]pendingObserve(nil), b.pending[b.maxBatch:]...)
	} else {
		b.pending = nil
	}
	b.mu.Unlock()

	actions := make([]repro.Action, len(batch))
	for i, w := range batch {
		actions[i] = w.action
	}
	errs := b.backend.ObserveBatch(actions)
	b.mFlushes.Inc()
	b.mSize.Observe(int64(len(batch)))
	if len(batch) > 1 {
		b.mCoalesced.Add(uint64(len(batch) - 1))
	}
	for i, w := range batch {
		w.done <- errs[i]
	}
	go b.flushOnce()
}
